"""Value/order consistency checking for completed coherence transactions.

The stand-alone random tester (like the paper's, which uses random
action/check pairs in the style of Wood et al.) records every completed
transaction together with the point at which it was ordered.  This module
holds those observations and checks them against the memory consistency
argument all three protocols rely on: because requests are totally ordered,
the value a load observes must be the value written by the most recent store
to that block ordered before the load.

Two kinds of store exist in a MOSI machine:

* **ordered stores** — GETM transactions, stamped with their position in the
  interconnect's total order (``order_seq``);
* **silent stores** — a processor already holding the block in M updates it
  without any interconnect transaction.  A silent store has no order position
  of its own; it lives *somewhere after* the ordered store that obtained M
  (its **chain base**) and before the next conflicting ordered transaction.

The checker therefore models each block's write history as chains hanging off
the ordered stores: a load ordered at ``s`` must observe either the latest
ordered store before ``s`` or any silent store chained to it (the load raced
the owner's subsequent silent stores; whichever prefix of the chain had been
applied when the data was served is coherent).  Observing a token whose chain
base is an *older* ordered store — or a token no store ever wrote — is a
violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import VerificationError


@dataclass(frozen=True)
class ObservedAccess:
    """One completed transaction as seen by the checker.

    ``chain_parent`` is only set for silent (hit-installed) stores: the token
    the block held immediately before this store overwrote it, linking the
    silent store to the ordered store it descends from.
    """

    node: int
    address: int
    is_write: bool
    token: int
    order_seq: Optional[int]
    completion_time: int
    chain_parent: Optional[int] = None


@dataclass
class ConsistencyChecker:
    """Collects observed accesses and validates per-block value ordering."""

    accesses: List[ObservedAccess] = field(default_factory=list)

    def record_write(
        self, node: int, address: int, token: int, order_seq: Optional[int], time: int
    ) -> None:
        """Record a completed store (GETM) and the token it installed."""
        self.accesses.append(
            ObservedAccess(node, address, True, token, order_seq, time)
        )

    def record_silent_write(
        self, node: int, address: int, token: int, parent_token: int, time: int
    ) -> None:
        """Record a store performed in M without an interconnect transaction.

        ``parent_token`` is the token the block held just before the store —
        the previous link of the block's silent-store chain (or the ordered
        store that obtained M).
        """
        self.accesses.append(
            ObservedAccess(
                node, address, True, token, None, time, chain_parent=parent_token
            )
        )

    def record_read(
        self, node: int, address: int, token: int, order_seq: Optional[int], time: int
    ) -> None:
        """Record a completed load (GETS) and the token it observed."""
        self.accesses.append(
            ObservedAccess(node, address, False, token, order_seq, time)
        )

    # ------------------------------------------------------------------ checks

    def check(self) -> List[str]:
        """Return a list of violations (empty when every read is consistent)."""
        violations: List[str] = []
        per_block: Dict[int, List[ObservedAccess]] = {}
        for access in self.accesses:
            per_block.setdefault(access.address, []).append(access)
        for address, accesses in per_block.items():
            violations.extend(self._check_block(address, accesses))
        return violations

    @staticmethod
    def _chain_bases(accesses: List[ObservedAccess]) -> Dict[int, int]:
        """Map every written token to the ordered store it descends from.

        Ordered stores are their own base.  Silent stores follow their
        ``chain_parent`` links until an ordered store's token is reached;
        a parent that was never recorded leaves the token unmapped (it will
        be reported as unknown).
        """
        parents: Dict[int, int] = {}
        bases: Dict[int, int] = {}
        for access in accesses:
            if not access.is_write:
                continue
            if access.order_seq is not None:
                bases[access.token] = access.token
            elif access.chain_parent is not None:
                parents[access.token] = access.chain_parent
        for token in list(parents):
            seen = []
            cursor = token
            while cursor in parents and cursor not in bases:
                seen.append(cursor)
                cursor = parents[cursor]
            base = bases.get(cursor)
            if base is None:
                continue  # dangling chain: the token stays unknown
            for link in seen:
                bases[link] = base
        return bases

    def _check_block(self, address: int, accesses: List[ObservedAccess]) -> List[str]:
        violations: List[str] = []
        ordered = [a for a in accesses if a.order_seq is not None]
        writes = sorted(
            (a for a in ordered if a.is_write), key=lambda a: a.order_seq
        )
        bases = self._chain_bases(accesses)
        for read in (a for a in ordered if not a.is_write):
            expected = 0
            for write in writes:
                if write.order_seq < read.order_seq:
                    expected = write.token
                else:
                    break
            token = read.token
            if token == expected:
                continue
            base = bases.get(token)
            if base is None and token != 0:
                violations.append(
                    f"block 0x{address:x}: P{read.node} read unknown token "
                    f"{token}"
                )
            elif base == expected and expected != 0:
                # The load raced the owner's silent-store chain descending
                # from the expected store: any prefix point is coherent.
                continue
            else:
                violations.append(
                    f"block 0x{address:x}: P{read.node} read token {token} at "
                    f"order {read.order_seq} but the latest earlier store wrote "
                    f"{expected}"
                )
        return violations

    def raise_on_violation(self) -> None:
        """Raise :class:`VerificationError` when any read saw a stale value."""
        violations = self.check()
        if violations:
            summary = "; ".join(violations[:10])
            raise VerificationError(
                f"{len(violations)} consistency violation(s): {summary}"
            )

    def reset(self) -> None:
        """Forget every recorded access, re-arming the checker for a new run.

        The built-in drivers construct a fresh checker per run; this is for
        callers that hold one long-lived checker across their own runs.
        """
        self.accesses.clear()

    @property
    def reads(self) -> int:
        """Number of recorded loads."""
        return sum(1 for access in self.accesses if not access.is_write)

    @property
    def writes(self) -> int:
        """Number of recorded stores."""
        return sum(1 for access in self.accesses if access.is_write)
