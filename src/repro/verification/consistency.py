"""Value/order consistency checking for completed coherence transactions.

The stand-alone random tester (like the paper's, which uses random
action/check pairs in the style of Wood et al.) records every completed
transaction together with the point at which it was ordered.  This module
holds those observations and checks them against the memory consistency
argument all three protocols rely on: because requests are totally ordered,
the value a load observes must be the value written by the most recent store
to that block ordered before the load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import VerificationError


@dataclass(frozen=True)
class ObservedAccess:
    """One completed transaction as seen by the checker."""

    node: int
    address: int
    is_write: bool
    token: int
    order_seq: Optional[int]
    completion_time: int


@dataclass
class ConsistencyChecker:
    """Collects observed accesses and validates per-block value ordering."""

    accesses: List[ObservedAccess] = field(default_factory=list)

    def record_write(
        self, node: int, address: int, token: int, order_seq: Optional[int], time: int
    ) -> None:
        """Record a completed store (GETM) and the token it installed."""
        self.accesses.append(
            ObservedAccess(node, address, True, token, order_seq, time)
        )

    def record_read(
        self, node: int, address: int, token: int, order_seq: Optional[int], time: int
    ) -> None:
        """Record a completed load (GETS) and the token it observed."""
        self.accesses.append(
            ObservedAccess(node, address, False, token, order_seq, time)
        )

    # ------------------------------------------------------------------ checks

    def check(self) -> List[str]:
        """Return a list of violations (empty when every read is consistent)."""
        violations: List[str] = []
        per_block: Dict[int, List[ObservedAccess]] = {}
        for access in self.accesses:
            per_block.setdefault(access.address, []).append(access)
        for address, accesses in per_block.items():
            violations.extend(self._check_block(address, accesses))
        return violations

    def _check_block(self, address: int, accesses: List[ObservedAccess]) -> List[str]:
        violations: List[str] = []
        ordered = [a for a in accesses if a.order_seq is not None]
        writes = sorted(
            (a for a in ordered if a.is_write), key=lambda a: a.order_seq
        )
        write_tokens = {a.token for a in writes}
        for read in (a for a in ordered if not a.is_write):
            expected = 0
            for write in writes:
                if write.order_seq < read.order_seq:
                    expected = write.token
                else:
                    break
            if read.token != expected and read.token not in write_tokens and read.token != 0:
                violations.append(
                    f"block 0x{address:x}: P{read.node} read unknown token "
                    f"{read.token}"
                )
            elif read.token != expected:
                violations.append(
                    f"block 0x{address:x}: P{read.node} read token {read.token} at "
                    f"order {read.order_seq} but the latest earlier store wrote "
                    f"{expected}"
                )
        return violations

    def raise_on_violation(self) -> None:
        """Raise :class:`VerificationError` when any read saw a stale value."""
        violations = self.check()
        if violations:
            summary = "; ".join(violations[:10])
            raise VerificationError(
                f"{len(violations)} consistency violation(s): {summary}"
            )

    @property
    def reads(self) -> int:
        """Number of recorded loads."""
        return sum(1 for access in self.accesses if not access.is_write)

    @property
    def writes(self) -> int:
        """Number of recorded stores."""
        return sum(1 for access in self.accesses if access.is_write)
