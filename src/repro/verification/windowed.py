"""Windowed differential verification: long campaigns under bounded memory.

The classic differential checker (:mod:`repro.verification.differential`)
materialises one whole :class:`MemoryTrace`, replays it through every
protocol and compares the outcomes.  That caps a campaign's length at
whatever trace fits comfortably in memory — and, more subtly, every replay
starts from a *cold* machine, so deep protocol state built up over millions
of operations is never exercised.

This module runs the same cross-protocol comparison **window by window**:

* a :class:`WindowedTraceSource` draws the identical random stream as
  :func:`~repro.verification.differential.generate_trace` but hands out
  bounded windows of operations, carrying the generator state (rng, token
  counter, per-block writer/owner model) across calls — the concatenation of
  its windows is op-for-op identical to one monolithic trace with the same
  seed and shape, yet only one window is ever resident;
* one live system **per protocol stays alive across windows** — caches stay
  warm, directories keep their sharer sets, the adaptive policy keeps its
  counters — and a fresh :class:`TraceReplayer` drives each window through
  it;
* the model's view of memory (the *carry*: last written token per block) is
  threaded across windows, so per-window final images, strict read values
  and consistency chains are all checked against history the current window
  never saw.

Cross-window consistency needs one piece of glue: each window's fresh
:class:`~repro.verification.consistency.ConsistencyChecker` is seeded with
the carried token per block as a synthetic ordered store at order position
:data:`CARRY_ORDER` (before everything the window itself orders).  Reads of
values written windows ago — and silent-store chains whose base store
happened windows ago — then resolve instead of reporting unknown tokens.

A failing window stops the run: after a divergence the protocols' states can
legitimately differ, so later windows would only cascade the first failure.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.config import ProtocolName
from ..errors import VerificationError
from ..system.multiprocessor import MultiprocessorSystem
from .differential import (
    ALL_PROTOCOLS,
    MemoryTrace,
    RACY,
    READ,
    ReplayConfig,
    ReplayResult,
    STRICT,
    SystemAcquirer,
    TraceOp,
    TraceReplayer,
    WRITE,
    WRITEBACK,
    empty_trace_workload,
)

#: Synthetic "node" recorded for carried-in block values when seeding a
#: window's consistency checker (never a real processor id).
CARRY_NODE = -1

#: Order position assigned to carried-in values: strictly before every
#: transaction any window orders (real order sequences are non-negative and
#: keep increasing across windows because the systems stay alive).
CARRY_ORDER = -1


class WindowedTraceSource:
    """Generates a random trace window by window, carrying generator state.

    Draws the same random stream as
    :func:`~repro.verification.differential.generate_trace`: the per-block
    writer map is fixed up front, then every operation consumes (node,
    block, delay, choice) draws in order.  ``next_window(n)`` therefore
    yields windows whose concatenation is identical to one monolithic
    ``generate_trace`` call with ``operations`` equal to the total — while
    holding only ``n`` operations at a time.
    """

    def __init__(
        self,
        seed: int,
        num_processors: int = 4,
        num_blocks: int = 4,
        mode: str = RACY,
        write_fraction: float = 0.45,
        writeback_fraction: float = 0.10,
        max_delay: Optional[int] = None,
    ) -> None:
        if mode not in (STRICT, RACY):
            raise VerificationError(f"unknown trace mode {mode!r}")
        self.seed = seed
        self.num_processors = num_processors
        self.num_blocks = num_blocks
        self.mode = mode
        self.write_fraction = write_fraction
        self.writeback_fraction = writeback_fraction
        self.max_delay = (
            (40 if mode == STRICT else 150) if max_delay is None else max_delay
        )
        self.single_writer = mode == RACY
        self._rng = random.Random(seed)
        self._writer_of = {
            block: self._rng.randrange(num_processors)
            for block in range(num_blocks)
        }
        self._owner: Dict[int, Optional[int]] = {
            block: None for block in range(num_blocks)
        }
        self._token = 0
        #: Total operations handed out so far.
        self.generated = 0

    def next_window(self, operations: int) -> MemoryTrace:
        """The next ``operations`` ops as a standalone :class:`MemoryTrace`."""
        rng = self._rng
        ops: List[TraceOp] = []
        while len(ops) < operations:
            node = rng.randrange(self.num_processors)
            block = rng.randrange(self.num_blocks)
            delay = rng.randrange(1, self.max_delay)
            choice = rng.random()
            kind = READ
            if choice < self.writeback_fraction:
                if self._owner[block] is not None:
                    node = self._owner[block]
                    kind = WRITEBACK
                    self._owner[block] = None
            elif choice < self.writeback_fraction + self.write_fraction:
                kind = WRITE
                if self.single_writer:
                    node = self._writer_of[block]
                self._owner[block] = node
            if kind == WRITE:
                self._token += 1
                ops.append(TraceOp(node, block, WRITE, self._token, delay))
            else:
                ops.append(TraceOp(node, block, kind, 0, delay))
        self.generated += len(ops)
        return MemoryTrace(
            num_processors=self.num_processors,
            num_blocks=self.num_blocks,
            mode=self.mode,
            seed=self.seed,
            single_writer=self.single_writer,
            ops=tuple(ops),
        )


# --------------------------------------------------------------- model carry


def apply_window_writes(trace: MemoryTrace, carry: Dict[int, int]) -> Dict[int, int]:
    """The model's per-block token map after replaying ``trace`` over ``carry``."""
    updated = dict(carry)
    for op in trace.ops:
        if op.kind == WRITE:
            updated[op.block] = op.token
    return updated


def expected_reads_with_carry(
    trace: MemoryTrace, carry: Dict[int, int]
) -> Dict[int, int]:
    """Global index -> the token each strict-mode read must observe.

    Like :meth:`MemoryTrace.expected_read_tokens` but starting from the
    carried memory image instead of all-zeros, so first reads of a block a
    window never writes expect the value written windows ago.
    """
    current = dict(carry)
    expected: Dict[int, int] = {}
    for index, op in enumerate(trace.ops):
        if op.kind == WRITE:
            current[op.block] = op.token
        elif op.kind == READ:
            expected[index] = current.get(op.block, 0)
    return expected


def _seed_checker(replayer: TraceReplayer, carry: Dict[int, int]) -> None:
    """Teach a fresh window's checker about values carried in from history."""
    for block, token in carry.items():
        if token == 0:
            continue
        replayer.checker.record_write(
            CARRY_NODE, replayer._address(block), token, CARRY_ORDER, 0
        )


# ----------------------------------------------------------------- comparison


def _compare_window(
    trace: MemoryTrace,
    results: Dict[ProtocolName, ReplayResult],
    carry: Dict[int, int],
) -> List[str]:
    """Cross-protocol and model comparison of one window's outcomes.

    The windowed twin of the monolithic checker's ``_compare_results``: the
    model prediction starts from the carried image, and strict read values
    are checked against :func:`expected_reads_with_carry`.
    """
    failures: List[str] = []
    for result in results.values():
        failures.extend(result.failures())
    complete = {
        protocol: result
        for protocol, result in results.items()
        if result.completed == result.operations
    }
    predicted = apply_window_writes(trace, carry)
    for protocol, result in complete.items():
        for block, want in predicted.items():
            got = result.final_image.get(block, 0)
            if got != want:
                failures.append(
                    f"{protocol}: block {block} ended with token {got}, "
                    f"the carried model predicts {want}"
                )
    protocols = list(complete)
    if len(protocols) >= 2:
        reference = protocols[0]
        base = complete[reference]
        compare_performed = all(r.evictions == 0 for r in complete.values())
        for other in protocols[1:]:
            candidate = complete[other]
            for block in range(trace.num_blocks):
                left = base.final_image.get(block, 0)
                right = candidate.final_image.get(block, 0)
                if left != right:
                    failures.append(
                        f"final image diverges on block {block}: "
                        f"{reference}={left} vs {other}={right}"
                    )
            if trace.mode == STRICT:
                for node in range(trace.num_processors):
                    for slot, (lhs, rhs) in enumerate(
                        zip(base.observations[node], candidate.observations[node])
                    ):
                        if lhs is None or rhs is None:
                            continue
                        same = (
                            lhs == rhs if compare_performed else lhs[:3] == rhs[:3]
                        )
                        if not same:
                            failures.append(
                                f"observation diverges at node {node} op "
                                f"{slot}: {reference}={lhs} vs {other}={rhs}"
                            )
    if trace.mode == STRICT:
        expected = expected_reads_with_carry(trace, carry)
        slot_of: Dict[int, Tuple[int, int]] = {}
        for node, stream in trace.per_node().items():
            for slot, (index, _op) in enumerate(stream):
                slot_of[index] = (node, slot)
        for protocol, result in complete.items():
            for index, want in expected.items():
                node, slot = slot_of[index]
                observed = result.observations[node][slot]
                if observed is None:
                    continue
                got = observed[2]
                if got != want:
                    failures.append(
                        f"{protocol}: node {node} read op {slot} observed "
                        f"token {got}, the carried serialisation requires "
                        f"{want}"
                    )
    return failures


# ------------------------------------------------------------------------ run


@dataclass
class WindowedDifferentialResult:
    """Outcome of one windowed differential run."""

    seed: int
    mode: str
    num_processors: int
    num_blocks: int
    windows_requested: int
    windows_completed: int
    window_ops: int
    operations: int
    protocols: Tuple[ProtocolName, ...]
    failures: List[str] = field(default_factory=list)
    #: Failures of the (single) window that stopped the run, keyed by index.
    window_failures: Dict[int, List[str]] = field(default_factory=dict)
    #: The model's final per-block token map (the carry after the last window).
    final_tokens: Dict[int, int] = field(default_factory=dict)
    #: Final simulator cycle per protocol (systems stay alive across windows).
    cycles: Dict[str, int] = field(default_factory=dict)
    watchdog_dumps: Dict[str, Dict] = field(default_factory=dict)
    #: Peak number of trace operations materialised at any moment — the
    #: bounded-memory contract: one window, never the whole campaign.
    max_resident_ops: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self) -> None:
        if self.failures:
            summary = "; ".join(self.failures[:10])
            raise VerificationError(
                f"windowed differential check failed "
                f"({len(self.failures)} problem(s)): {summary}"
            )

    def to_jsonable(self) -> Dict:
        return {
            "seed": self.seed,
            "mode": self.mode,
            "num_processors": self.num_processors,
            "num_blocks": self.num_blocks,
            "windows_requested": self.windows_requested,
            "windows_completed": self.windows_completed,
            "window_ops": self.window_ops,
            "operations": self.operations,
            "protocols": [str(p) for p in self.protocols],
            "ok": self.ok,
            "failures": list(self.failures),
            "final_tokens": {
                str(block): token
                for block, token in sorted(self.final_tokens.items())
            },
            "cycles": dict(self.cycles),
            "max_resident_ops": self.max_resident_ops,
            "watchdog_dumps": dict(self.watchdog_dumps) or None,
        }


def run_windowed_differential(
    seed: int,
    windows: int = 4,
    window_ops: int = 50,
    num_processors: int = 4,
    num_blocks: int = 4,
    mode: str = RACY,
    write_fraction: float = 0.45,
    writeback_fraction: float = 0.10,
    protocols: Sequence[ProtocolName] = ALL_PROTOCOLS,
    replay: ReplayConfig = ReplayConfig(),
    acquire: Optional[SystemAcquirer] = None,
) -> WindowedDifferentialResult:
    """Replay ``windows`` bounded trace windows through long-lived systems.

    Each protocol's system is built once (window 0) and kept alive: window
    ``k+1`` starts from whatever cache/directory/policy state window ``k``
    left behind, exactly like one long monolithic replay — but only one
    window of trace is ever materialised.  ``replay.max_cycles`` is applied
    per window, relative to each system's current cycle.
    """
    if windows < 1:
        raise VerificationError(f"windows must be >= 1 (got {windows})")
    if window_ops < 1:
        raise VerificationError(f"window_ops must be >= 1 (got {window_ops})")
    if acquire is None:
        acquire = lambda config, workload: MultiprocessorSystem(config, workload)
    source = WindowedTraceSource(
        seed,
        num_processors=num_processors,
        num_blocks=num_blocks,
        mode=mode,
        write_fraction=write_fraction,
        writeback_fraction=writeback_fraction,
    )
    resolved = tuple(ProtocolName(p) for p in protocols)
    systems: Dict[ProtocolName, MultiprocessorSystem] = {}
    carry: Dict[int, int] = {block: 0 for block in range(num_blocks)}
    failures: List[str] = []
    window_failures: Dict[int, List[str]] = {}
    cycles: Dict[str, int] = {}
    watchdog_dumps: Dict[str, Dict] = {}
    max_resident = 0
    completed_windows = 0
    for index in range(windows):
        window = source.next_window(window_ops)
        max_resident = max(max_resident, len(window.ops))
        results: Dict[ProtocolName, ReplayResult] = {}
        for protocol in resolved:
            if protocol not in systems:
                config = replay.system_config(window, protocol)
                systems[protocol] = acquire(
                    config, empty_trace_workload(num_processors)
                )
            system = systems[protocol]
            window_replay = dataclasses.replace(
                replay, max_cycles=system.simulator.now + replay.max_cycles
            )
            replayer = TraceReplayer(system, window, window_replay)
            _seed_checker(replayer, carry)
            result = replayer.run()
            results[protocol] = result
            cycles[str(protocol)] = system.simulator.now
            if result.watchdog_failure is not None:
                watchdog_dumps[str(protocol)] = result.watchdog_failure
        problems = _compare_window(window, results, carry)
        if problems:
            window_failures[index] = problems
            failures.extend(f"window {index}: {line}" for line in problems)
            # Protocol states may legitimately diverge after a real failure;
            # later windows would only cascade it.
            break
        carry = apply_window_writes(window, carry)
        completed_windows += 1
    return WindowedDifferentialResult(
        seed=seed,
        mode=mode,
        num_processors=num_processors,
        num_blocks=num_blocks,
        windows_requested=windows,
        windows_completed=completed_windows,
        window_ops=window_ops,
        operations=source.generated,
        protocols=resolved,
        failures=failures,
        window_failures=window_failures,
        final_tokens=carry,
        cycles=cycles,
        watchdog_dumps=watchdog_dumps,
        max_resident_ops=max_resident,
    )
