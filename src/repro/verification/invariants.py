"""Coherence invariants checked over a simulated system's final state.

The paper validates its protocols with a stand-alone random tester plus formal
methods.  This module provides the invariant checks the random tester (and the
integration tests) apply to this reproduction:

* **Single owner** — for every block, at most one cache is in M or O.
* **Exclusive modified** — if some cache holds a block in M, no other cache
  holds it in S or O.
* **Owner bit consistency** — if no cache owns a block, its home directory
  must say memory is the owner (once the system is quiescent).
* **Data value consistency** — a quiescent block's current value (token) is
  the value written by the most recent store in coherence order; every cache
  holding the block in S/O/M and the memory (when memory owns it) must agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..coherence.state import MOSIState
from ..errors import VerificationError
from ..system.multiprocessor import MultiprocessorSystem


@dataclass
class InvariantReport:
    """Outcome of an invariant sweep over one system."""

    blocks_checked: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return not self.violations

    def raise_on_violation(self) -> None:
        """Raise :class:`VerificationError` if any violation was recorded."""
        if self.violations:
            summary = "; ".join(self.violations[:10])
            raise VerificationError(
                f"{len(self.violations)} coherence invariant violation(s): {summary}"
            )


def _addresses_in_use(system: MultiprocessorSystem) -> Set[int]:
    addresses: Set[int] = set()
    for node in system.nodes:
        for block in node.cache_controller.blocks:
            addresses.add(block.address)
        addresses.update(node.memory_controller.directory.entries().keys())
    return addresses


def check_invariants(
    system: MultiprocessorSystem, expect_quiescent: bool = True
) -> InvariantReport:
    """Check the coherence invariants over every block the system has touched."""
    report = InvariantReport()
    for address in sorted(_addresses_in_use(system)):
        report.blocks_checked += 1
        _check_block(system, address, report, expect_quiescent)
    return report


def _check_block(
    system: MultiprocessorSystem,
    address: int,
    report: InvariantReport,
    expect_quiescent: bool,
) -> None:
    owners: Dict[int, MOSIState] = {}
    holders: Dict[int, MOSIState] = {}
    modified: List[int] = []
    for node in system.nodes:
        state = node.cache_controller.state_of(address)
        if state.is_owner:
            owners[node.node_id] = state
        if state.has_valid_data:
            holders[node.node_id] = state
        if state is MOSIState.MODIFIED:
            modified.append(node.node_id)

    if len(owners) > 1:
        report.violations.append(
            f"block 0x{address:x}: multiple cache owners {sorted(owners)}"
        )
    if modified and len(holders) > 1:
        report.violations.append(
            f"block 0x{address:x}: node {modified[0]} is Modified but "
            f"{sorted(set(holders) - set(modified))} also hold copies"
        )

    home = system.nodes[system.config.home_node(address)]
    entry = home.memory_controller.directory.entries().get(address)
    if expect_quiescent and entry is not None:
        if not owners and not entry.memory_is_owner and not entry.awaiting_writeback:
            report.violations.append(
                f"block 0x{address:x}: no cache owner but home says "
                f"P{entry.owner} owns it"
            )
        if owners and entry.memory_is_owner:
            report.violations.append(
                f"block 0x{address:x}: cache {sorted(owners)} owns it but home "
                "says memory is the owner"
            )

    # Data value agreement: the owner's token is the truth; sharers must match.
    if owners:
        owner_id = next(iter(owners))
        truth = system.nodes[owner_id].cache_controller.blocks.lookup(address).data_token
    elif entry is not None and entry.memory_is_owner:
        truth = entry.data_token
    else:
        return
    for node_id, state in holders.items():
        token = system.nodes[node_id].cache_controller.blocks.lookup(address).data_token
        if state is MOSIState.SHARED and token != truth and expect_quiescent:
            report.violations.append(
                f"block 0x{address:x}: P{node_id} holds stale token {token} "
                f"(owner has {truth})"
            )
