"""Coherence invariants checked over a simulated system's state.

The paper validates its protocols with a stand-alone random tester plus formal
methods.  This module provides the invariant checks the random tester, the
differential verification engine, and the integration tests apply to this
reproduction:

* **Single owner** — for every block, at most one cache is in M or O.
* **Exclusive modified** — if some cache holds a block in M, no other cache
  holds it in S or O.
* **Owner bit consistency** — if no cache owns a block, its home directory
  must say memory is the owner (once the system is quiescent).
* **Data value consistency** — a quiescent block's current value (token) is
  the value written by the most recent store in coherence order; every cache
  holding the block in S/O/M and the memory (when memory owns it) must agree.

Two entry points exist:

* :func:`check_invariants` sweeps every touched block of a (normally
  quiescent) system — the classic end-of-run check;
* :class:`InvariantMonitor` checks invariants *mid-run*, at every transaction
  completion, via the completion hooks of the verification drivers.  The
  block invariants are only *logical-time* invariants here: a writer may
  legally complete while the invalidations its ordered request triggered are
  still queued behind link occupancy (a stale Shared copy with no transaction
  in flight anywhere), and the Directory protocol's upgrade race even leaves
  *two* Modified copies briefly — the losing upgrader re-owns at its marker
  while the winner's stale copy heals only when it services the deferred
  forward.  The monitor therefore treats a settled-check hit as a
  *candidate* and re-checks after a confirmation delay: in-flight traffic
  lands and clears the candidate, while a genuine protocol bug (a copy
  nothing will ever invalidate) persists and is reported.  The quiescent
  end-of-run sweep remains the deterministic backstop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..coherence.state import MOSIState
from ..errors import VerificationError
from ..system.multiprocessor import MultiprocessorSystem


@dataclass
class InvariantReport:
    """Outcome of an invariant sweep over one system."""

    blocks_checked: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return not self.violations

    def raise_on_violation(self) -> None:
        """Raise :class:`VerificationError` if any violation was recorded."""
        if self.violations:
            summary = "; ".join(self.violations[:10])
            raise VerificationError(
                f"{len(self.violations)} coherence invariant violation(s): {summary}"
            )


def _addresses_in_use(system: MultiprocessorSystem) -> Set[int]:
    addresses: Set[int] = set()
    for node in system.nodes:
        for block in node.cache_controller.blocks:
            addresses.add(block.address)
        addresses.update(node.memory_controller.directory.entries().keys())
    return addresses


@dataclass
class BlockView:
    """Stable cache states of one block across every node, for checking."""

    owners: Dict[int, MOSIState]
    holders: Dict[int, MOSIState]
    modified: List[int]


def collect_block_view(system: MultiprocessorSystem, address: int) -> BlockView:
    """Gather every node's stable state for ``address``."""
    owners: Dict[int, MOSIState] = {}
    holders: Dict[int, MOSIState] = {}
    modified: List[int] = []
    for node in system.nodes:
        state = node.cache_controller.state_of(address)
        if state.is_owner:
            owners[node.node_id] = state
        if state.has_valid_data:
            holders[node.node_id] = state
        if state is MOSIState.MODIFIED:
            modified.append(node.node_id)
    return BlockView(owners, holders, modified)


def check_invariants(
    system: MultiprocessorSystem, expect_quiescent: bool = True
) -> InvariantReport:
    """Check the coherence invariants over every block the system has touched."""
    report = InvariantReport()
    for address in sorted(_addresses_in_use(system)):
        report.blocks_checked += 1
        _check_block(system, address, report, expect_quiescent)
    return report


def check_single_owner(
    system: MultiprocessorSystem, address: int
) -> Optional[str]:
    """The single-owner invariant for one block; a violation string or None.

    Note that even this is a *logical-time* invariant: the Directory
    protocol's upgrade race legally leaves two Modified copies for a bounded
    window (see the module docstring), so mid-run callers must treat a hit
    as a candidate to confirm, not an immediate failure.
    """
    view = collect_block_view(system, address)
    if len(view.owners) > 1:
        return f"block 0x{address:x}: multiple cache owners {sorted(view.owners)}"
    return None


def _owner_structure_violations(address: int, view: BlockView) -> List[str]:
    """Single-owner and exclusive-M violations for one block view."""
    violations: List[str] = []
    if len(view.owners) > 1:
        violations.append(
            f"block 0x{address:x}: multiple cache owners {sorted(view.owners)}"
        )
    if view.modified and len(view.holders) > 1:
        violations.append(
            f"block 0x{address:x}: node {view.modified[0]} is Modified but "
            f"{sorted(set(view.holders) - set(view.modified))} also hold copies"
        )
    return violations


def _value_agreement_violations(
    system: MultiprocessorSystem, address: int, view: BlockView, truth: int
) -> List[str]:
    """Sharers disagreeing with the authoritative token ``truth``."""
    violations: List[str] = []
    for node_id, state in view.holders.items():
        token = system.nodes[node_id].cache_controller.blocks.lookup(address).data_token
        if state is MOSIState.SHARED and token != truth:
            violations.append(
                f"block 0x{address:x}: P{node_id} holds stale token {token} "
                f"(owner has {truth})"
            )
    return violations


def _owner_truth(
    system: MultiprocessorSystem, address: int, view: BlockView
) -> Optional[int]:
    """The owning cache's token, or None when no cache owns the block."""
    if not view.owners:
        return None
    owner_id = next(iter(view.owners))
    return system.nodes[owner_id].cache_controller.blocks.lookup(address).data_token


def check_settled_block(
    system: MultiprocessorSystem, address: int
) -> List[str]:
    """Single-owner, exclusive-M and value-agreement checks for one
    transaction-quiet block.

    Callers must ensure no transaction for ``address`` is in flight anywhere
    (see :meth:`InvariantMonitor`); under that guard a violation here is a
    real protocol bug, not a legal transient.
    """
    view = collect_block_view(system, address)
    violations = _owner_structure_violations(address, view)
    truth = _owner_truth(system, address, view)
    if truth is not None:
        violations.extend(
            _value_agreement_violations(system, address, view, truth)
        )
    return violations


def _check_block(
    system: MultiprocessorSystem,
    address: int,
    report: InvariantReport,
    expect_quiescent: bool,
) -> None:
    view = collect_block_view(system, address)
    report.violations.extend(_owner_structure_violations(address, view))

    home = system.nodes[system.config.home_node(address)]
    entry = home.memory_controller.directory.entries().get(address)
    if expect_quiescent and entry is not None:
        if not view.owners and not entry.memory_is_owner and not entry.awaiting_writeback:
            report.violations.append(
                f"block 0x{address:x}: no cache owner but home says "
                f"P{entry.owner} owns it"
            )
        if view.owners and entry.memory_is_owner:
            report.violations.append(
                f"block 0x{address:x}: cache {sorted(view.owners)} owns it but "
                "home says memory is the owner"
            )

    if not expect_quiescent:
        return
    # Data value agreement: the owner's token is the truth (memory's copy
    # when no cache owns the block); sharers must match.
    truth = _owner_truth(system, address, view)
    if truth is None and entry is not None and entry.memory_is_owner:
        truth = entry.data_token
    if truth is not None:
        report.violations.extend(
            _value_agreement_violations(system, address, view, truth)
        )


class InvariantMonitor:
    """Checks coherence invariants at every transaction completion.

    The verification drivers call :meth:`on_complete` from their completion
    callbacks.  The monitor schedules a *settled* check of the completed
    address's block invariants (single owner, exclusive-M, value agreement)
    one cycle later, run only while no transaction for the address is in
    flight on any node.  Because invalidations and handoffs may still be
    queued in the network at that point (legal physical-time transients —
    see the module docstring), a settled-check hit is held as a candidate
    and re-checked after ``confirm_cycles``; only a violation that persists
    across an otherwise-idle window is recorded.  Violations accumulate in
    :attr:`violations` with the cycle at which they were confirmed; drivers
    poll :attr:`tripped` to fail fast.
    """

    def __init__(
        self,
        system: MultiprocessorSystem,
        max_violations: int = 25,
        confirm_cycles: int = 2_000,
    ) -> None:
        self.system = system
        self.max_violations = max_violations
        self.confirm_cycles = confirm_cycles
        self.violations: List[str] = []
        self.checks_run = 0
        self.settled_checks_run = 0
        self.candidates_seen = 0
        self._scheduler = system.simulator.scheduler
        self._pending_settled: Set[int] = set()
        self._pending_confirm: Dict[int, int] = {}
        self._activity: Dict[int, int] = {}

    # -------------------------------------------------------------- interface

    @property
    def tripped(self) -> bool:
        """True once any invariant violation has been observed."""
        return bool(self.violations)

    def on_complete(self, transaction) -> None:
        """Notify the monitor that ``transaction`` just completed."""
        self.check_address(transaction.address)

    def check_address(self, address: int) -> None:
        """Run the mid-run checks for one block address."""
        if len(self.violations) >= self.max_violations:
            return
        self.checks_run += 1
        self._activity[address] = self._activity.get(address, 0) + 1
        if address not in self._pending_settled:
            self._pending_settled.add(address)
            self._scheduler.schedule_after_fast1(
                1, self._settled_check, address, "invariant-monitor:settle"
            )

    def report(self) -> InvariantReport:
        """The mid-run violations as an :class:`InvariantReport`."""
        report = InvariantReport(blocks_checked=self.checks_run)
        report.violations.extend(self.violations)
        return report

    # --------------------------------------------------------------- internals

    def _record(self, violation: str) -> None:
        self.violations.append(f"cycle {self._scheduler.now}: {violation}")

    def _in_flight(self, address: int) -> bool:
        for node in self.system.nodes:
            cache = node.cache_controller
            if address in cache.transactions or address in cache.writebacks:
                return True
        return False

    def _settled_check(self, address: int) -> None:
        self._pending_settled.discard(address)
        if len(self.violations) >= self.max_violations:
            return
        if self._in_flight(address):
            return
        self.settled_checks_run += 1
        if not check_settled_block(self.system, address):
            return
        # Candidate: could be a genuine bug or an invalidation still queued
        # in the network.  Re-check after the confirmation delay; only a
        # persisting violation is a finding.
        self.candidates_seen += 1
        if address not in self._pending_confirm:
            self._pending_confirm[address] = self._activity.get(address, 0)
            self._scheduler.schedule_after_fast1(
                self.confirm_cycles,
                self._confirm_check,
                address,
                "invariant-monitor:confirm",
            )

    def _confirm_check(self, address: int) -> None:
        activity_then = self._pending_confirm.pop(address, None)
        if len(self.violations) >= self.max_violations:
            return
        if self._in_flight(address):
            # New traffic took over the block; its completions re-arm the
            # settled check, so the candidate is simply dropped.
            return
        if activity_then != self._activity.get(address, 0):
            # The block saw new completions during the window: whatever we
            # observed belonged to traffic, not to a stuck state.  Those
            # completions scheduled their own settled checks.
            return
        for violation in check_settled_block(self.system, address):
            self._record(violation)


# ---------------------------------------------------------------- hang evidence


def deadlock_dump(
    system: MultiprocessorSystem,
    *,
    completed: int,
    operations: int,
    extra: Optional[Dict] = None,
) -> Dict:
    """JSON-safe snapshot of a stalled system (deadlock/livelock evidence).

    Both the differential watchdog and the campaign service use this to
    persist what the system looked like the moment forward progress stopped,
    so hangs caught in short-lived workers survive as replayable artifacts.
    ``extra`` merges caller-specific context (per-node cursors, recent
    events) into the dump; every value must already be JSON-serialisable.
    """
    dump: Dict = {
        "cycle": system.simulator.scheduler.now,
        "protocol": str(system.config.protocol),
        "operations": operations,
        "completed": completed,
        "outstanding": [repr(t) for t in system.outstanding_transactions()],
        "pending_events": system.simulator.scheduler.pending,
    }
    if extra:
        dump.update(extra)
    return dump
