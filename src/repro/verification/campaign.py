"""Campaign engine: fuzz all three protocols at sweep-executor scale.

A :class:`VerificationCampaign` fans verification *tasks* — differential
trace replays (see :mod:`repro.verification.differential`) and random-tester
runs (see :mod:`repro.verification.random_tester`) — across seeds × protocols
× configuration axes (processors, hot blocks, bandwidth, outstanding
operations per node, adaptive thresholds, cache capacity).  Execution mirrors
the experiment sweep executor: tasks run on a process pool when workers are
available (each worker keeps one :class:`~repro.experiments.batch.BatchRunner`
whose pooled systems are *reset*, not rebuilt, between tasks) and fall back
to a serial loop in restricted sandboxes.

When a task fails, the campaign **shrinks** the failing trace to a minimal
reproducer — greedy chunked op-removal, re-running the differential checker
after every removal — and writes it as a replayable JSON artifact.  Load one
back with :func:`load_artifact` / :func:`replay_artifact`, or from the shell::

    python -m repro verify --campaign quick
    python - <<'PY'
    from repro.verification.campaign import replay_artifact
    print(replay_artifact("verification-failures/....json").failures)
    PY
"""

from __future__ import annotations

import dataclasses
import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..common.config import ProtocolName
from ..errors import VerificationError
from ..experiments.batch import BatchRunner
from ..experiments.parallel import (
    POOL_FALLBACK_ERRORS,
    available_workers,
    drain_futures,
    resolve_task_timeout,
    shutdown_pool,
)

logger = logging.getLogger(__name__)
from .differential import (
    ALL_PROTOCOLS,
    MemoryTrace,
    RACY,
    ReplayConfig,
    STRICT,
    generate_trace,
    run_differential,
)
from .random_tester import RandomProtocolTester
from .windowed import run_windowed_differential

#: Task kinds.
DIFFERENTIAL = "differential"
RANDOM = "random"
WINDOWED = "windowed"


@dataclass(frozen=True)
class VerificationTask:
    """One unit of campaign work, picklable for the process pool."""

    kind: str
    seed: int
    mode: str = RACY  # trace mode for differential tasks
    protocols: Tuple[str, ...] = tuple(str(p) for p in ALL_PROTOCOLS)
    num_processors: int = 4
    num_blocks: int = 4
    operations: int = 50
    bandwidth_mb_per_second: float = 400.0
    max_outstanding_per_node: int = 1
    utilization_threshold: float = 0.75
    cache_capacity_blocks: Optional[int] = None
    #: Windowed tasks replay this many windows of ``operations`` ops each
    #: through long-lived systems (ignored by the other kinds).
    windows: int = 1

    def trace(self) -> MemoryTrace:
        """The recorded trace a differential task replays."""
        return generate_trace(
            self.seed,
            num_processors=self.num_processors,
            num_blocks=self.num_blocks,
            operations=self.operations,
            mode=self.mode,
        )

    def replay_config(self) -> ReplayConfig:
        return ReplayConfig(
            bandwidth_mb_per_second=self.bandwidth_mb_per_second,
            max_outstanding_per_node=self.max_outstanding_per_node,
            utilization_threshold=self.utilization_threshold,
            cache_capacity_blocks=self.cache_capacity_blocks,
        )

    def describe(self) -> str:
        axes = (
            f"seed={self.seed} p={self.num_processors} blocks={self.num_blocks} "
            f"bw={self.bandwidth_mb_per_second:g} out={self.max_outstanding_per_node}"
        )
        if self.kind == DIFFERENTIAL:
            return f"differential[{self.mode}] {axes}"
        if self.kind == WINDOWED:
            return f"windowed[{self.mode}] {axes} windows={self.windows}"
        return f"random[{'+'.join(self.protocols)}] {axes}"

    def to_jsonable(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_jsonable(cls, data: Dict) -> "VerificationTask":
        """Rebuild a task written by :meth:`to_jsonable` (tuples restored)."""
        return cls(**{**data, "protocols": tuple(data["protocols"])})


@dataclass
class TaskOutcome:
    """What one task produced (picklable; crosses the pool boundary)."""

    task: VerificationTask
    ok: bool
    failures: List[str] = field(default_factory=list)
    protocol_runs: int = 0
    operations: int = 0
    #: Structured deadlock-watchdog dumps per protocol name, when a replay
    #: stalled (see :func:`repro.verification.invariants.deadlock_dump`) —
    #: the hang evidence that artifacts and service workers persist.
    watchdog_dumps: Dict[str, Dict] = field(default_factory=dict)

    def to_jsonable(self) -> Dict:
        return {
            "task": self.task.to_jsonable(),
            "ok": self.ok,
            "failures": list(self.failures),
            "protocol_runs": self.protocol_runs,
            "operations": self.operations,
            "watchdog_dumps": dict(self.watchdog_dumps),
        }

    @classmethod
    def from_jsonable(cls, data: Dict) -> "TaskOutcome":
        """Rebuild an outcome written by :meth:`to_jsonable` (service store)."""
        return cls(
            task=VerificationTask.from_jsonable(data["task"]),
            ok=bool(data["ok"]),
            failures=list(data.get("failures", ())),
            protocol_runs=int(data.get("protocol_runs", 0)),
            operations=int(data.get("operations", 0)),
            watchdog_dumps=dict(data.get("watchdog_dumps", {})),
        )


def run_task(
    task: VerificationTask, runner: Optional[BatchRunner] = None
) -> TaskOutcome:
    """Execute one verification task, reusing ``runner``'s pooled systems."""
    acquire = runner.acquire if runner is not None else None
    if task.kind == DIFFERENTIAL:
        trace = task.trace()
        result = run_differential(
            trace,
            protocols=[ProtocolName(p) for p in task.protocols],
            replay=task.replay_config(),
            acquire=acquire,
        )
        return TaskOutcome(
            task=task,
            ok=result.ok,
            failures=list(result.failures),
            protocol_runs=len(result.results),
            operations=len(trace.ops) * len(result.results),
            watchdog_dumps={
                str(protocol): replay_result.watchdog_failure
                for protocol, replay_result in result.results.items()
                if replay_result.watchdog_failure is not None
            },
        )
    if task.kind == WINDOWED:
        windowed = run_windowed_differential(
            task.seed,
            windows=task.windows,
            window_ops=task.operations,
            num_processors=task.num_processors,
            num_blocks=task.num_blocks,
            mode=task.mode,
            protocols=[ProtocolName(p) for p in task.protocols],
            replay=task.replay_config(),
            acquire=acquire,
        )
        return TaskOutcome(
            task=task,
            ok=windowed.ok,
            failures=list(windowed.failures),
            protocol_runs=len(task.protocols),
            operations=windowed.operations * len(task.protocols),
            watchdog_dumps=dict(windowed.watchdog_dumps),
        )
    if task.kind == RANDOM:
        failures: List[str] = []
        runs = 0
        operations = 0
        for protocol in task.protocols:
            tester = RandomProtocolTester(
                ProtocolName(protocol),
                num_processors=task.num_processors,
                num_blocks=task.num_blocks,
                operations=task.operations,
                seed=task.seed + 1,
                bandwidth_mb_per_second=task.bandwidth_mb_per_second,
                max_outstanding_per_node=task.max_outstanding_per_node,
                acquire=acquire,
            )
            result = tester.run()
            runs += 1
            operations += result.operations_issued
            if not result.ok:
                failures.extend(result.describe_failures())
        return TaskOutcome(
            task=task,
            ok=not failures,
            failures=failures,
            protocol_runs=runs,
            operations=operations,
        )
    raise VerificationError(f"unknown verification task kind {task.kind!r}")


# ------------------------------------------------------------------ shrinking


def shrink_trace(
    trace: MemoryTrace,
    still_failing: Callable[[MemoryTrace], bool],
    max_probes: int = 400,
) -> MemoryTrace:
    """Greedily remove operations while ``still_failing`` keeps returning True.

    Classic chunked delta-reduction: try dropping halves, then quarters, down
    to single operations, re-running the checker after every candidate
    removal.  ``still_failing`` must be deterministic (differential replays
    are).  ``max_probes`` bounds the total number of checker runs.
    """
    if not still_failing(trace):
        raise VerificationError("shrink_trace called with a passing trace")
    current = trace
    probes = 0
    chunk = max(1, len(current.ops) // 2)
    while chunk >= 1:
        start = 0
        while start < len(current.ops):
            if probes >= max_probes:
                return current
            keep = [
                index
                for index in range(len(current.ops))
                if not (start <= index < start + chunk)
            ]
            if not keep:
                start += chunk
                continue
            candidate = current.subset(keep)
            probes += 1
            if still_failing(candidate):
                current = candidate
            else:
                start += chunk
        chunk //= 2
    return current


def differential_failure_predicate(
    task: VerificationTask, runner: Optional[BatchRunner] = None
) -> Callable[[MemoryTrace], bool]:
    """``still_failing`` for :func:`shrink_trace`: replay + differential check."""
    acquire = runner.acquire if runner is not None else None
    replay = task.replay_config()
    protocols = [ProtocolName(p) for p in task.protocols]

    def still_failing(candidate: MemoryTrace) -> bool:
        result = run_differential(
            candidate, protocols=protocols, replay=replay, acquire=acquire
        )
        return not result.ok

    return still_failing


# ------------------------------------------------------------------ artifacts


def write_artifact(
    directory: Path,
    task: VerificationTask,
    failures: Sequence[str],
    shrunk: Optional[MemoryTrace],
    watchdog_dumps: Optional[Dict[str, Dict]] = None,
) -> Path:
    """Persist a replayable JSON description of one campaign failure.

    ``watchdog_dumps`` embeds the deadlock watchdog's structured stall dumps
    (per protocol) so hang evidence survives the process that observed it —
    service workers write this artifact *before* committing an outcome, i.e.
    before their lease can expire.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    # Every axis that distinguishes campaign tasks appears in the name, so
    # two failing tasks can never overwrite each other's artifact.
    capacity = (
        "full" if task.cache_capacity_blocks is None else task.cache_capacity_blocks
    )
    name = (
        f"{task.kind}-{task.mode}-seed{task.seed}-p{task.num_processors}"
        f"-b{task.num_blocks}-bw{task.bandwidth_mb_per_second:g}"
        f"-out{task.max_outstanding_per_node}"
        f"-thr{task.utilization_threshold:g}-cap{capacity}.json"
    )
    path = directory / name
    payload = {
        "format": "repro-verification-failure-v1",
        "task": task.to_jsonable(),
        "replay_config": dataclasses.asdict(task.replay_config()),
        "failures": list(failures),
        "shrunk_trace": shrunk.to_jsonable() if shrunk is not None else None,
        "watchdog_dumps": dict(watchdog_dumps) if watchdog_dumps else None,
        "replay_with": (
            "python -c \"from repro.verification.campaign import replay_artifact; "
            f"print(replay_artifact('{path}').failures)\""
        ),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path) -> Dict:
    """Load a failure artifact written by :func:`write_artifact`."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != "repro-verification-failure-v1":
        raise VerificationError(f"{path} is not a verification failure artifact")
    return data


def replay_artifact(path):
    """Re-run the failing check recorded in a failure artifact.

    Differential artifacts replay the shrunk trace when one was recorded
    (the minimal reproducer), falling back to regenerating the original
    trace from the task metadata, and return a
    :class:`~repro.verification.differential.DifferentialResult`.
    Random-tester artifacts re-run the recorded task exactly (same seed and
    knobs) and return its :class:`TaskOutcome` — a differential replay of a
    synthesised trace would not reproduce what actually failed.
    """
    data = load_artifact(path)
    task = VerificationTask.from_jsonable(data["task"])
    if task.kind != DIFFERENTIAL:
        return run_task(task)
    replay = ReplayConfig(**data["replay_config"])
    if data.get("shrunk_trace"):
        trace = MemoryTrace.from_jsonable(data["shrunk_trace"])
    else:
        trace = task.trace()
    return run_differential(
        trace, protocols=[ProtocolName(p) for p in task.protocols], replay=replay
    )


# ------------------------------------------------------------------ campaigns


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a campaign: axes crossed with seeds."""

    name: str
    seeds: Tuple[int, ...]
    modes: Tuple[str, ...] = (STRICT, RACY)
    protocols: Tuple[str, ...] = tuple(str(p) for p in ALL_PROTOCOLS)
    processors: Tuple[int, ...] = (4,)
    blocks: Tuple[int, ...] = (4,)
    operations: int = 50
    bandwidths: Tuple[float, ...] = (400.0,)
    outstanding: Tuple[int, ...] = (1,)
    thresholds: Tuple[float, ...] = (0.75,)
    capacities: Tuple[Optional[int], ...] = (None,)
    random_seeds: Tuple[int, ...] = ()
    random_operations: int = 150
    #: Windowed differential tasks: each seed replays ``windowed_windows``
    #: windows of ``windowed_operations`` ops through long-lived systems
    #: (caches stay warm across windows; memory stays bounded per window).
    windowed_seeds: Tuple[int, ...] = ()
    windowed_windows: int = 3
    windowed_operations: int = 40

    def tasks(self) -> List[VerificationTask]:
        """Expand the axis cross-product into the campaign's task list."""
        expanded: List[VerificationTask] = []
        for seed in self.seeds:
            for mode in self.modes:
                for num_processors in self.processors:
                    for num_blocks in self.blocks:
                        for bandwidth in self.bandwidths:
                            for outstanding in self.outstanding:
                                for threshold in self.thresholds:
                                    for capacity in self.capacities:
                                        expanded.append(
                                            VerificationTask(
                                                kind=DIFFERENTIAL,
                                                seed=seed,
                                                mode=mode,
                                                protocols=self.protocols,
                                                num_processors=num_processors,
                                                num_blocks=num_blocks,
                                                operations=self.operations,
                                                bandwidth_mb_per_second=bandwidth,
                                                max_outstanding_per_node=outstanding,
                                                utilization_threshold=threshold,
                                                cache_capacity_blocks=capacity,
                                            )
                                        )
        for seed in self.windowed_seeds:
            for mode in self.modes:
                expanded.append(
                    VerificationTask(
                        kind=WINDOWED,
                        seed=seed,
                        mode=mode,
                        protocols=self.protocols,
                        num_processors=self.processors[0],
                        num_blocks=min(self.blocks),
                        operations=self.windowed_operations,
                        bandwidth_mb_per_second=self.bandwidths[0],
                        windows=self.windowed_windows,
                    )
                )
        for seed in self.random_seeds:
            for outstanding in self.outstanding:
                expanded.append(
                    VerificationTask(
                        kind=RANDOM,
                        seed=seed,
                        protocols=self.protocols,
                        num_processors=self.processors[0],
                        num_blocks=min(self.blocks),
                        operations=self.random_operations,
                        bandwidth_mb_per_second=self.bandwidths[0],
                        max_outstanding_per_node=outstanding,
                    )
                )
        return expanded

    def with_overrides(
        self,
        protocols: Optional[Sequence[str]] = None,
        seeds: Optional[Sequence[int]] = None,
    ) -> "CampaignSpec":
        """The same campaign restricted to other protocols and/or seeds."""
        changes = {}
        if protocols is not None:
            changes["protocols"] = tuple(str(ProtocolName(p)) for p in protocols)
        if seeds is not None:
            changes["seeds"] = tuple(seeds)
            if self.random_seeds:
                changes["random_seeds"] = tuple(seeds)[: len(self.random_seeds)]
            if self.windowed_seeds:
                changes["windowed_seeds"] = tuple(seeds)[
                    : len(self.windowed_seeds)
                ]
        return dataclasses.replace(self, **changes)


#: The CI smoke campaign: >= 50 differential traces x 3 protocols plus a
#: handful of random-tester runs, sized to finish in well under 90 s.
QUICK_CAMPAIGN = CampaignSpec(
    name="quick",
    seeds=tuple(range(7)),
    modes=(STRICT, RACY),
    bandwidths=(400.0, 1600.0),
    outstanding=(1, 2),
    operations=50,
    random_seeds=(0, 1),
    random_operations=150,
    windowed_seeds=(0, 1),
    windowed_windows=3,
    windowed_operations=40,
)

#: The overnight campaign: wider axes, deeper seeds.
DEEP_CAMPAIGN = CampaignSpec(
    name="deep",
    seeds=tuple(range(40)),
    modes=(STRICT, RACY),
    processors=(4, 6),
    blocks=(2, 4),
    operations=80,
    bandwidths=(200.0, 400.0, 3200.0),
    outstanding=(1, 2),
    thresholds=(0.6, 0.75),
    capacities=(None, 2),
    random_seeds=tuple(range(10)),
    random_operations=300,
    windowed_seeds=tuple(range(6)),
    windowed_windows=6,
    windowed_operations=80,
)

#: Named campaigns the CLI can select.
CAMPAIGNS: Dict[str, CampaignSpec] = {
    QUICK_CAMPAIGN.name: QUICK_CAMPAIGN,
    DEEP_CAMPAIGN.name: DEEP_CAMPAIGN,
}


@dataclass
class TaskFailure:
    """One failed task, its shrunk reproducer and (optionally) its artifact."""

    task: VerificationTask
    failures: List[str]
    shrunk_trace: Optional[MemoryTrace] = None
    artifact_path: Optional[str] = None

    def to_jsonable(self) -> Dict:
        return {
            "task": self.task.to_jsonable(),
            "failures": list(self.failures),
            "shrunk_ops": (
                len(self.shrunk_trace.ops) if self.shrunk_trace is not None else None
            ),
            "shrunk_trace": (
                self.shrunk_trace.to_jsonable()
                if self.shrunk_trace is not None
                else None
            ),
            "artifact": self.artifact_path,
        }


@dataclass
class CampaignResult:
    """Aggregate outcome of one campaign run."""

    spec: CampaignSpec
    outcomes: List[TaskOutcome]
    failures: List[TaskFailure]
    wall_seconds: float
    workers: int
    #: ServiceSummary.to_jsonable() when the campaign ran through the durable
    #: job service (verify --service-store); None for pool/serial runs.
    service: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def traces(self) -> int:
        return sum(1 for o in self.outcomes if o.task.kind == DIFFERENTIAL)

    @property
    def protocol_runs(self) -> int:
        return sum(o.protocol_runs for o in self.outcomes)

    @property
    def operations(self) -> int:
        return sum(o.operations for o in self.outcomes)

    def summary(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.failures)} task(s))"
        return (
            f"campaign {self.spec.name}: {status} — "
            f"{len(self.outcomes)} tasks ({self.traces} differential traces), "
            f"{self.protocol_runs} protocol runs, {self.operations} operations "
            f"in {self.wall_seconds:.1f}s ({self.workers} worker(s))"
        )

    def to_jsonable(self) -> Dict:
        return {
            "campaign": self.spec.name,
            "ok": self.ok,
            "tasks": len(self.outcomes),
            "differential_traces": self.traces,
            "protocol_runs": self.protocol_runs,
            "operations": self.operations,
            "wall_seconds": round(self.wall_seconds, 3),
            "workers": self.workers,
            "failures": [failure.to_jsonable() for failure in self.failures],
            **({"service": self.service} if self.service is not None else {}),
        }


# ------------------------------------------------------------- pool execution

#: Per-process batch runner: worker processes live for the whole pool, so one
#: runner per process lets every task reuse (reset) previously built systems.
_PROCESS_RUNNER: Optional[BatchRunner] = None


def _process_runner() -> BatchRunner:
    global _PROCESS_RUNNER
    if _PROCESS_RUNNER is None:
        _PROCESS_RUNNER = BatchRunner()
    return _PROCESS_RUNNER


def _run_task_chunk(tasks: List[VerificationTask]) -> List[TaskOutcome]:
    """Module-level worker entry point (must be picklable itself)."""
    runner = _process_runner()
    return [run_task(task, runner) for task in tasks]


def _chunk_tasks(
    tasks: Sequence[VerificationTask], workers: int
) -> List[List[int]]:
    """Group task indices by system shape, then slice for load balance."""
    by_key: Dict[Tuple, List[int]] = {}
    for index, task in enumerate(tasks):
        by_key.setdefault((task.num_processors,), []).append(index)
    chunk_size = max(1, -(-len(tasks) // max(1, workers)))
    chunks: List[List[int]] = []
    for group in by_key.values():
        for start in range(0, len(group), chunk_size):
            chunks.append(group[start : start + chunk_size])
    return chunks


def _run_campaign_tasks(
    tasks: Sequence[VerificationTask],
    workers: Optional[int] = None,
    service=None,
    task_timeout=None,
) -> Tuple[List[TaskOutcome], int, Optional[Dict]]:
    """Run tasks; returns (outcomes in order, workers used, service summary).

    ``workers=0`` means "auto" ($REPRO_SWEEP_WORKERS or the CPU count), like
    the sweep executor.  Restricted sandboxes fall back to a serial loop on a
    single reset-reusing runner; results are identical either way.

    ``service`` shards the campaign into the fault-tolerant job service
    (durable leased work units over a shared store) instead of the ad-hoc
    pool.  ``task_timeout`` (default $REPRO_TASK_TIMEOUT) bounds each pool
    task's wall clock: a hung task is cancelled, logged, and retried
    serially rather than stalling the campaign.
    """
    if workers == 0:
        workers = available_workers()
    workers = 1 if workers is None else max(1, workers)
    timeout = resolve_task_timeout(task_timeout)
    results: List[Optional[TaskOutcome]] = [None] * len(tasks)
    used_workers = 1

    if service is not None:
        from ..experiments.service import run_service_campaign

        outcomes, summary = run_service_campaign(
            tasks, service, workers=None if workers <= 1 else workers
        )
        return (  # type: ignore[return-value]
            list(outcomes), max(1, workers), summary.to_jsonable()
        )

    if workers > 1 and len(tasks) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            max_workers = min(workers, len(tasks))
            pool = ProcessPoolExecutor(max_workers=max_workers)
            abandoned = False
            try:
                chunks = _chunk_tasks(tasks, max_workers)
                futures = {
                    pool.submit(_run_task_chunk, [tasks[i] for i in chunk]): chunk
                    for chunk in chunks
                }

                def on_result(chunk: List[int], future) -> None:
                    for index, outcome in zip(chunk, future.result()):
                        results[index] = outcome

                timed_out = drain_futures(futures, on_result, timeout)
                if timed_out:
                    abandoned = True
                    hung = sorted(i for chunk in timed_out for i in chunk)
                    logger.warning(
                        "%d verification task(s) exceeded the %.1fs task "
                        "timeout; abandoning their pool tasks and retrying "
                        "serially",
                        len(hung),
                        timeout,
                    )
            finally:
                shutdown_pool(pool, abandoned)
            used_workers = max_workers
        except POOL_FALLBACK_ERRORS:
            # Restricted environments and unpicklable payloads fall back to
            # the serial loop below; outcomes the pool did complete are kept
            # (mirroring run_sweep's fallback).
            pass

    if any(result is None for result in results):
        runner = BatchRunner()
        for index, task in enumerate(tasks):
            if results[index] is None:
                results[index] = run_task(task, runner)
    return results, used_workers, None  # type: ignore[return-value]


def run_campaign_tasks(
    tasks: Sequence[VerificationTask],
    workers: Optional[int] = None,
    service=None,
    task_timeout=None,
) -> List[TaskOutcome]:
    """Run every task — across a process pool when ``workers`` > 1 — in order."""
    return _run_campaign_tasks(
        tasks, workers, service=service, task_timeout=task_timeout
    )[0]


class VerificationCampaign:
    """Runs a :class:`CampaignSpec` end to end, shrinking any failures."""

    def __init__(
        self,
        spec: CampaignSpec,
        artifact_dir=None,
        shrink: bool = True,
        service=None,
        task_timeout=None,
    ) -> None:
        self.spec = spec
        self.artifact_dir = artifact_dir
        self.shrink = shrink
        self.service = service
        self.task_timeout = task_timeout

    def run(self, workers: Optional[int] = None) -> CampaignResult:
        started = time.perf_counter()
        tasks = self.spec.tasks()
        outcomes, resolved_workers, service_summary = _run_campaign_tasks(
            tasks,
            workers,
            service=self.service,
            task_timeout=self.task_timeout,
        )
        failures: List[TaskFailure] = []
        runner = BatchRunner()
        for outcome in outcomes:
            if outcome.ok:
                continue
            failure = TaskFailure(task=outcome.task, failures=outcome.failures)
            if self.shrink and outcome.task.kind == DIFFERENTIAL:
                predicate = differential_failure_predicate(outcome.task, runner)
                trace = outcome.task.trace()
                try:
                    failure.shrunk_trace = shrink_trace(trace, predicate)
                except VerificationError:
                    # Not reproducible in the parent process (e.g. the pool
                    # worker hit an environment-dependent failure): keep the
                    # original failure report without a reproducer.
                    failure.shrunk_trace = None
            if self.artifact_dir is not None:
                failure.artifact_path = str(
                    write_artifact(
                        Path(self.artifact_dir),
                        outcome.task,
                        outcome.failures,
                        failure.shrunk_trace,
                        watchdog_dumps=outcome.watchdog_dumps,
                    )
                )
            failures.append(failure)
        return CampaignResult(
            spec=self.spec,
            outcomes=outcomes,
            failures=failures,
            wall_seconds=time.perf_counter() - started,
            workers=resolved_workers,
            service=service_summary,
        )


def run_campaign(
    campaign="quick",
    workers: Optional[int] = None,
    protocols: Optional[Sequence[str]] = None,
    seeds: Optional[Sequence[int]] = None,
    artifact_dir=None,
    shrink: bool = True,
    service=None,
    task_timeout=None,
) -> CampaignResult:
    """Run a named (or explicit) campaign spec and return its result."""
    if isinstance(campaign, CampaignSpec):
        spec = campaign
    else:
        try:
            spec = CAMPAIGNS[str(campaign)]
        except KeyError:
            raise VerificationError(
                f"unknown campaign {campaign!r}; available: {sorted(CAMPAIGNS)}"
            ) from None
    if protocols is not None or seeds is not None:
        spec = spec.with_overrides(protocols=protocols, seeds=seeds)
    return VerificationCampaign(
        spec,
        artifact_dir=artifact_dir,
        shrink=shrink,
        service=service,
        task_timeout=task_timeout,
    ).run(workers=workers)
