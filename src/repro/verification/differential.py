"""Differential protocol verification: one trace, three protocols, one answer.

The paper gains confidence in Snooping, Directory and BASH separately; this
module goes further and checks them *against each other*.  A recorded random
trace — a global sequence of read/write/writeback operations over a small set
of hot blocks — is replayed through every protocol, and the observable memory
semantics are compared:

* **final memory image** — the per-block data token the machine would answer
  with at quiescence (owner cache, else the home's memory copy) must be
  identical across protocols, and equal to the trace's own prediction;
* **per-node load-observation sequences** — in ``strict`` replay mode every
  protocol must return the identical sequence of values to every node.

A bug in any one protocol therefore shows up as a divergence from the other
two (and from the model), even when its own invariants happen to hold.

Two replay modes trade determinism against race coverage:

``strict``
    Conflicting operations on the same block are serialised by the trace's
    global order: an operation issues only after every earlier operation on
    its block has completed.  Different blocks still race freely through the
    shared links, networks and directories, and ownership migrates node to
    node, but every load's value is fully determined by the trace — so final
    images *and* complete per-node observation sequences are asserted equal
    across protocols.  Multiple writers per block are allowed.

``racy``
    Only per-node program order is enforced; same-block requests from
    different nodes collide in flight exactly like the random tester's
    traffic.  Load values then legitimately depend on protocol timing, so
    each block has a *single writer* (readers everywhere), which keeps the
    final image deterministic: it is compared across protocols and against
    the model, while load values are checked per protocol by the
    silent-store-aware :class:`~repro.verification.consistency.ConsistencyChecker`.

Both modes run the mid-run :class:`~repro.verification.invariants.InvariantMonitor`
at every transaction completion and a deadlock/livelock watchdog that turns
"no completions within a cycle budget" into a structured failure dump.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..common.config import AdaptiveConfig, ProtocolName, SystemConfig
from ..errors import VerificationError
from ..interconnect.message import MessageType
from ..system.multiprocessor import MultiprocessorSystem
from ..workloads.base import MemoryOperation
from ..workloads.trace import TraceWorkload
from .consistency import ConsistencyChecker
from .invariants import (
    InvariantMonitor,
    InvariantReport,
    check_invariants,
    deadlock_dump,
)

#: Trace operation kinds.
READ = "read"
WRITE = "write"
WRITEBACK = "writeback"

#: Replay modes (see the module docstring).
STRICT = "strict"
RACY = "racy"

#: Delay before re-attempting an issue blocked on an in-flight same-address
#: transaction (mirrors the sequencer's retry-busy path).
_RETRY_DELAY = 10

#: Cycles a hit / skipped operation takes to "complete" (breaks recursion
#: while staying deterministic).
_LOCAL_LATENCY = 1


@dataclass(frozen=True)
class TraceOp:
    """One recorded operation: ``node`` touches ``block``.

    ``token`` is the globally unique value a write installs; ``delay`` is the
    recorded think time between the operation becoming eligible and its issue
    (part of the trace, so replays consume no randomness).
    """

    node: int
    block: int
    kind: str
    token: int = 0
    delay: int = 1


@dataclass
class MemoryTrace:
    """A recorded random trace plus the metadata needed to replay it."""

    num_processors: int
    num_blocks: int
    mode: str
    seed: int
    single_writer: bool
    ops: Tuple[TraceOp, ...]

    def __len__(self) -> int:
        return len(self.ops)

    # ------------------------------------------------------------ projections

    def per_node(self) -> Dict[int, List[Tuple[int, TraceOp]]]:
        """Each node's (global index, op) list, in program order."""
        streams: Dict[int, List[Tuple[int, TraceOp]]] = {
            node: [] for node in range(self.num_processors)
        }
        for index, op in enumerate(self.ops):
            streams[op.node].append((index, op))
        return streams

    def block_ranks(self) -> Dict[int, int]:
        """Global index -> position among the operations on the same block."""
        counts: Dict[int, int] = {}
        ranks: Dict[int, int] = {}
        for index, op in enumerate(self.ops):
            rank = counts.get(op.block, 0)
            ranks[index] = rank
            counts[op.block] = rank + 1
        return ranks

    def predicted_final_tokens(self) -> Dict[int, int]:
        """The model's final token per block: the last write in trace order.

        Exact for ``strict`` traces (the replay serialises each block to the
        trace order) and for single-writer ``racy`` traces (one node's writes
        to a block complete in its program order).
        """
        final: Dict[int, int] = {block: 0 for block in range(self.num_blocks)}
        for op in self.ops:
            if op.kind == WRITE:
                final[op.block] = op.token
        return final

    def expected_read_tokens(self) -> Dict[int, int]:
        """Global index -> the value each read must observe in strict replay."""
        current: Dict[int, int] = {}
        expected: Dict[int, int] = {}
        for index, op in enumerate(self.ops):
            if op.kind == WRITE:
                current[op.block] = op.token
            elif op.kind == READ:
                expected[index] = current.get(op.block, 0)
        return expected

    def subset(self, keep: Sequence[int]) -> "MemoryTrace":
        """A new trace holding only the operations at the given indices."""
        kept = tuple(self.ops[index] for index in sorted(set(keep)))
        return MemoryTrace(
            num_processors=self.num_processors,
            num_blocks=self.num_blocks,
            mode=self.mode,
            seed=self.seed,
            single_writer=self.single_writer,
            ops=kept,
        )

    def to_workload(self, block_bytes: int) -> TraceWorkload:
        """The trace as a sequencer-driven workload (full-stack replay).

        Recorded delays become think cycles; writebacks are dropped (the
        sequencer issues its own evictions).  Useful for driving a shrunk
        failure artifact through the production simulation path.
        """
        traces: Dict[int, List[MemoryOperation]] = {
            node: [] for node in range(self.num_processors)
        }
        for op in self.ops:
            if op.kind == WRITEBACK:
                continue
            traces[op.node].append(
                MemoryOperation(
                    address=op.block * block_bytes,
                    is_write=op.kind == WRITE,
                    think_cycles=op.delay,
                    label=f"trace-{op.kind}",
                )
            )
        return TraceWorkload(traces)

    # ------------------------------------------------------------------- JSON

    def to_jsonable(self) -> Dict:
        return {
            "num_processors": self.num_processors,
            "num_blocks": self.num_blocks,
            "mode": self.mode,
            "seed": self.seed,
            "single_writer": self.single_writer,
            "ops": [
                [op.node, op.block, op.kind, op.token, op.delay] for op in self.ops
            ],
        }

    @classmethod
    def from_jsonable(cls, data: Dict) -> "MemoryTrace":
        return cls(
            num_processors=int(data["num_processors"]),
            num_blocks=int(data["num_blocks"]),
            mode=str(data["mode"]),
            seed=int(data["seed"]),
            single_writer=bool(data["single_writer"]),
            ops=tuple(
                TraceOp(int(n), int(b), str(k), int(t), int(d))
                for n, b, k, t, d in data["ops"]
            ),
        )


def generate_trace(
    seed: int,
    num_processors: int = 4,
    num_blocks: int = 4,
    operations: int = 60,
    mode: str = RACY,
    write_fraction: float = 0.45,
    writeback_fraction: float = 0.10,
    max_delay: Optional[int] = None,
) -> MemoryTrace:
    """Record one random trace concentrating traffic on a few hot blocks.

    ``racy`` traces give every block a single writer (readers everywhere) so
    the final image stays deterministic under races; ``strict`` traces let
    ownership migrate between writers, since the replay serialises each
    block.  Writebacks are only recorded for the node the model says owns the
    block, so a ``strict`` replay must always perform them.
    """
    if mode not in (STRICT, RACY):
        raise VerificationError(f"unknown trace mode {mode!r}")
    rng = random.Random(seed)
    if max_delay is None:
        max_delay = 40 if mode == STRICT else 150
    single_writer = mode == RACY
    writer_of = {
        block: rng.randrange(num_processors) for block in range(num_blocks)
    }
    owner: Dict[int, Optional[int]] = {block: None for block in range(num_blocks)}
    ops: List[TraceOp] = []
    token = 0
    while len(ops) < operations:
        node = rng.randrange(num_processors)
        block = rng.randrange(num_blocks)
        delay = rng.randrange(1, max_delay)
        choice = rng.random()
        kind = READ
        if choice < writeback_fraction:
            if owner[block] is not None:
                node = owner[block]
                kind = WRITEBACK
                owner[block] = None
        elif choice < writeback_fraction + write_fraction:
            kind = WRITE
            if single_writer:
                node = writer_of[block]
            owner[block] = node
        if kind == WRITE:
            token += 1
            ops.append(TraceOp(node, block, WRITE, token, delay))
        else:
            ops.append(TraceOp(node, block, kind, 0, delay))
    return MemoryTrace(
        num_processors=num_processors,
        num_blocks=num_blocks,
        mode=mode,
        seed=seed,
        single_writer=single_writer,
        ops=tuple(ops),
    )


# --------------------------------------------------------------------- replay


@dataclass
class ReplayResult:
    """Everything one protocol's replay of a trace produced."""

    protocol: ProtocolName
    operations: int
    completed: int
    cycles: int
    hits: int
    silent_stores: int
    skipped_writebacks: int
    evictions: int
    retries: int
    nacks: int
    #: Per node: one ``(block, kind, token, performed)`` row per trace
    #: operation, in program order (None where the op never completed).
    observations: Dict[int, List[Optional[Tuple[int, str, int, bool]]]]
    final_image: Dict[int, int]
    consistency_violations: List[str]
    midrun_report: Optional[InvariantReport]
    final_report: InvariantReport
    watchdog_failure: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return (
            self.completed == self.operations
            and not self.consistency_violations
            and (self.midrun_report is None or self.midrun_report.ok)
            and self.final_report.ok
            and self.watchdog_failure is None
        )

    def failures(self) -> List[str]:
        """Human-readable descriptions of everything that went wrong."""
        problems: List[str] = []
        if self.watchdog_failure is not None:
            problems.append(
                f"{self.protocol}: watchdog tripped at cycle "
                f"{self.watchdog_failure['cycle']} "
                f"({self.watchdog_failure['completed']}/"
                f"{self.watchdog_failure['operations']} ops)"
            )
        elif self.completed != self.operations:
            problems.append(
                f"{self.protocol}: {self.operations - self.completed} of "
                f"{self.operations} operations never completed"
            )
        if self.midrun_report is not None and not self.midrun_report.ok:
            problems.extend(
                f"{self.protocol} [mid-run] {v}" for v in self.midrun_report.violations
            )
        if not self.final_report.ok:
            problems.extend(
                f"{self.protocol} [final] {v}" for v in self.final_report.violations
            )
        problems.extend(
            f"{self.protocol} [consistency] {v}"
            for v in self.consistency_violations
        )
        return problems


@dataclass(frozen=True)
class ReplayConfig:
    """Per-replay knobs shared by every protocol of one differential run."""

    bandwidth_mb_per_second: float = 400.0
    max_outstanding_per_node: int = 1
    utilization_threshold: float = 0.75
    sampling_interval: int = 64
    policy_counter_bits: int = 5
    cache_capacity_blocks: Optional[int] = None
    midrun_invariants: bool = True
    watchdog_interval: int = 25_000
    max_cycles: int = 5_000_000
    drain_cycles: int = 200_000
    recent_events: int = 48

    def system_config(
        self, trace: MemoryTrace, protocol: ProtocolName
    ) -> SystemConfig:
        """The :class:`SystemConfig` replaying ``trace`` under ``protocol``."""
        extra = {}
        if self.cache_capacity_blocks is not None:
            extra["cache_capacity_blocks"] = self.cache_capacity_blocks
        return SystemConfig(
            num_processors=trace.num_processors,
            protocol=ProtocolName(protocol),
            bandwidth_mb_per_second=self.bandwidth_mb_per_second,
            adaptive=AdaptiveConfig(
                utilization_threshold=self.utilization_threshold,
                sampling_interval=self.sampling_interval,
                policy_counter_bits=self.policy_counter_bits,
            ),
            random_seed=trace.seed,
            **extra,
        )


def empty_trace_workload(num_processors: int) -> TraceWorkload:
    """The inert workload verification systems are built (and reset) with."""
    return TraceWorkload({node: [] for node in range(num_processors)})


class TraceReplayer:
    """Drives one system's cache controllers through a recorded trace.

    The replayer bypasses the sequencers (like the random tester) so it can
    observe every completed transaction, enforce the trace's dependency
    structure, and keep issuing under ``max_outstanding_per_node`` in-flight
    operations per node.
    """

    def __init__(
        self,
        system: MultiprocessorSystem,
        trace: MemoryTrace,
        replay: ReplayConfig = ReplayConfig(),
    ) -> None:
        if system.config.num_processors != trace.num_processors:
            raise VerificationError(
                f"trace wants {trace.num_processors} processors, system has "
                f"{system.config.num_processors}"
            )
        self.system = system
        self.trace = trace
        self.replay = replay
        self.strict = trace.mode == STRICT
        self._block_bytes = system.config.cache_block_bytes
        self._streams = trace.per_node()
        self._ranks = trace.block_ranks()
        self._block_progress: Dict[int, int] = {
            block: 0 for block in range(trace.num_blocks)
        }
        self._node_position: Dict[int, int] = {}  # node -> per-stream cursor
        self._node_outstanding: Dict[int, int] = {}
        self._node_issue_pending: Dict[int, bool] = {}
        self._op_slot: Dict[int, Tuple[int, int]] = {}  # global idx -> (node, slot)
        for node, stream in self._streams.items():
            self._node_position[node] = 0
            self._node_outstanding[node] = 0
            self._node_issue_pending[node] = False
            for slot, (index, _op) in enumerate(stream):
                self._op_slot[index] = (node, slot)
        self.checker = ConsistencyChecker()
        self.monitor = (
            InvariantMonitor(system) if replay.midrun_invariants else None
        )
        self.completed = 0
        self.hits = 0
        self.silent_stores = 0
        self.skipped_writebacks = 0
        self.evictions = 0
        self.observations: Dict[int, List[Optional[Tuple[int, str, int, bool]]]] = {
            node: [None] * len(stream) for node, stream in self._streams.items()
        }
        self.watchdog_failure: Optional[Dict] = None
        self._watchdog_active = False
        self._watchdog_last = -1
        self._recent_events: deque = deque(maxlen=replay.recent_events)
        self._done = [False]
        scheduler = system.simulator.scheduler
        self._schedule_after = scheduler.schedule_after_fast1
        self._now = lambda: scheduler.now

    # -------------------------------------------------------------- event hook

    def _record_event(self, time: int, label: str) -> None:
        self._recent_events.append((time, label))

    # ------------------------------------------------------------------ pumping

    def _address(self, block: int) -> int:
        return block * self._block_bytes

    def _eligible(self, index: int, op: TraceOp) -> bool:
        if not self.strict:
            return True
        return self._ranks[index] == self._block_progress[op.block]

    def _pump_all(self) -> None:
        for node in range(self.trace.num_processors):
            self._pump(node)

    def _pump(self, node: int) -> None:
        if self._node_issue_pending[node]:
            return
        stream = self._streams[node]
        position = self._node_position[node]
        if position >= len(stream):
            return
        if self._node_outstanding[node] >= self.replay.max_outstanding_per_node:
            return
        index, op = stream[position]
        if not self._eligible(index, op):
            return
        self._node_issue_pending[node] = True
        self._schedule_after(
            op.delay, self._issue, index, f"replayer-issue:n{node}"
        )

    def _issue(self, index: int) -> None:
        node, slot = self._op_slot[index]
        op = self.trace.ops[index]
        cache = self.system.nodes[node].cache_controller
        address = self._address(op.block)
        if cache.has_outstanding(address):
            # An eviction writeback (or, in racy mode, a previous same-block
            # op of this node) is still in flight: retry like the sequencer.
            self._schedule_after(
                _RETRY_DELAY, self._issue, index, f"replayer-retry:n{node}"
            )
            return
        self._node_issue_pending[node] = False
        self._node_position[node] = slot + 1
        self._node_outstanding[node] += 1
        state = cache.state_of(address)
        if op.kind == READ:
            # In strict mode only *owner* copies may satisfy a read locally: a
            # Shared copy can be stale in physical time (its invalidation may
            # still be queued in the network — a legal transient, the read
            # would order logically before the invalidating write), which
            # would break the mode's determinism contract.  Dropping S and
            # re-fetching is the silent S->I downgrade the protocols permit,
            # and the fresh request is ordered after the conflicting write.
            if state.has_valid_data and (state.is_owner or not self.strict):
                self.hits += 1
                token = cache.blocks.lookup(address).data_token
                self._finish_local(index, op, token, True)
            else:
                if state.has_valid_data:
                    cache.blocks.lookup(address).invalidate()
                    cache.blocks.drop(address)
                self._maybe_evict(cache)
                cache.issue_request(
                    address, MessageType.GETS, callback=self._on_transaction
                ).context = index
        elif op.kind == WRITE:
            if state.can_write:
                block = cache.blocks.lookup(address)
                self.silent_stores += 1
                self.checker.record_silent_write(
                    node, address, op.token, block.data_token, self._now()
                )
                block.data_token = op.token
                self._finish_local(index, op, op.token, True)
            else:
                self._maybe_evict(cache)
                cache.issue_request(
                    address,
                    MessageType.GETM,
                    callback=self._on_transaction,
                    store_token=op.token,
                ).context = index
        elif op.kind == WRITEBACK:
            if state.is_owner:
                cache.issue_writeback(
                    address, callback=self._on_transaction
                ).context = index
            else:
                self.skipped_writebacks += 1
                self._finish_local(index, op, 0, False)
        else:  # pragma: no cover - trace validation
            raise VerificationError(f"unknown trace op kind {op.kind!r}")
        self._pump(node)

    def _maybe_evict(self, cache) -> None:
        """Mirror the sequencer's eviction policy before installing a miss."""
        if not cache.blocks.is_full():
            return
        victim = cache.blocks.eviction_candidate()
        if victim is None or cache.has_outstanding(victim.address):
            return
        self.evictions += 1
        if victim.is_owner:
            cache.issue_writeback(victim.address)
        else:
            victim.invalidate()
            cache.blocks.drop(victim.address)

    # --------------------------------------------------------------- completion

    def _finish_local(self, index: int, op: TraceOp, token: int, performed: bool) -> None:
        """Complete a hit / silent store / skipped writeback one cycle later."""
        self._schedule_after(
            _LOCAL_LATENCY,
            self._complete_local,
            (index, op, token, performed),
            f"replayer-local:n{op.node}",
        )

    def _complete_local(self, payload) -> None:
        index, op, token, performed = payload
        self._record(index, op, token, performed)

    def _on_transaction(self, transaction) -> None:
        index = transaction.context
        op = self.trace.ops[index]
        node = op.node
        address = transaction.address
        now = self._now()
        if op.kind == READ:
            token = transaction.received_token
            self.checker.record_read(
                node, address, token, transaction.effective_order_seq, now
            )
        elif op.kind == WRITE:
            token = op.token
            self.checker.record_write(
                node, address, transaction.store_token,
                transaction.effective_order_seq, now,
            )
        else:
            token = 0
        self._record(index, op, token, True)

    def _record(
        self, index: int, op: TraceOp, token: int, performed: bool
    ) -> None:
        node, slot = self._op_slot[index]
        self.observations[node][slot] = (op.block, op.kind, token, performed)
        self._node_outstanding[node] -= 1
        self._block_progress[op.block] += 1
        self.completed += 1
        if self.monitor is not None:
            self.monitor.check_address(self._address(op.block))
        if self.completed >= len(self.trace.ops):
            self._done[0] = True
        self._pump_all()

    # ----------------------------------------------------------------- watchdog

    def _watchdog(self, _arg) -> None:
        if not self._watchdog_active or self._done[0]:
            return
        if self.completed == self._watchdog_last:
            self.watchdog_failure = self._failure_dump()
            return
        self._watchdog_last = self.completed
        self._schedule_after(
            self.replay.watchdog_interval, self._watchdog, None, "replayer-watchdog"
        )

    def _failure_dump(self) -> Dict:
        """Structured description of a stalled replay (deadlock/livelock)."""
        return deadlock_dump(
            self.system,
            completed=self.completed,
            operations=len(self.trace.ops),
            extra={
                "next_op_per_node": {
                    node: (
                        None
                        if self._node_position[node] >= len(self._streams[node])
                        else self._streams[node][self._node_position[node]][0]
                    )
                    for node in range(self.trace.num_processors)
                },
                "recent_events": list(self._recent_events),
            },
        )

    # ---------------------------------------------------------------------- run

    def run(self) -> ReplayResult:
        """Replay the trace to completion (or failure) and gather every check."""
        replay = self.replay
        simulator = self.system.simulator
        scheduler = simulator.scheduler
        scheduler.add_fire_hook(self._record_event)
        monitor = self.monitor
        try:
            self._watchdog_active = True
            self._schedule_after(
                replay.watchdog_interval, self._watchdog, None, "replayer-watchdog"
            )
            self._pump_all()
            done = self._done
            if monitor is not None:
                violations = monitor.violations
                stop = lambda: (
                    done[0]
                    or self.watchdog_failure is not None
                    or bool(violations)
                )
            else:
                stop = lambda: done[0] or self.watchdog_failure is not None
            simulator.run(until=replay.max_cycles, stop_when=stop)
            self._watchdog_active = False
            # Let in-flight messages (stale data, markers) drain so the final
            # sweep sees a quiescent machine.
            simulator.run(until=simulator.now + replay.drain_cycles)
        finally:
            self._watchdog_active = False
            scheduler.remove_fire_hook(self._record_event)
        counters = self.system.stats.counters()
        addresses = [self._address(b) for b in range(self.trace.num_blocks)]
        image = self.system.final_memory_image(addresses)
        return ReplayResult(
            protocol=ProtocolName(self.system.config.protocol),
            operations=len(self.trace.ops),
            completed=self.completed,
            cycles=simulator.now,
            hits=self.hits,
            silent_stores=self.silent_stores,
            skipped_writebacks=self.skipped_writebacks,
            evictions=self.evictions,
            retries=int(counters.get("system.retries", 0)),
            nacks=int(counters.get("system.nacks", 0)),
            observations=self.observations,
            final_image={
                block: image[self._address(block)]
                for block in range(self.trace.num_blocks)
            },
            consistency_violations=self.checker.check(),
            midrun_report=monitor.report() if monitor is not None else None,
            final_report=check_invariants(self.system, expect_quiescent=True),
            watchdog_failure=self.watchdog_failure,
        )


# --------------------------------------------------------------- differential


#: The protocols a differential run covers by default.
ALL_PROTOCOLS: Tuple[ProtocolName, ...] = (
    ProtocolName.SNOOPING,
    ProtocolName.DIRECTORY,
    ProtocolName.BASH,
)

#: ``acquire(config, workload) -> MultiprocessorSystem`` — how differential
#: runs obtain systems.  The campaign passes a pooled, reset-reusing acquirer
#: (see :class:`repro.experiments.batch.BatchRunner.acquire`).
SystemAcquirer = Callable[[SystemConfig, TraceWorkload], MultiprocessorSystem]


def _build_system(config: SystemConfig, workload: TraceWorkload) -> MultiprocessorSystem:
    return MultiprocessorSystem(config, workload)


@dataclass
class DifferentialResult:
    """Outcome of replaying one trace through several protocols."""

    trace: MemoryTrace
    replay: ReplayConfig
    results: Dict[ProtocolName, ReplayResult]
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self) -> None:
        if self.failures:
            summary = "; ".join(self.failures[:10])
            raise VerificationError(
                f"differential check failed ({len(self.failures)} problem(s)): "
                f"{summary}"
            )

    def to_jsonable(self) -> Dict:
        return {
            "trace": self.trace.to_jsonable(),
            "ok": self.ok,
            "failures": list(self.failures),
            "protocols": {
                str(protocol): {
                    "operations": result.operations,
                    "completed": result.completed,
                    "cycles": result.cycles,
                    "hits": result.hits,
                    "silent_stores": result.silent_stores,
                    "skipped_writebacks": result.skipped_writebacks,
                    "evictions": result.evictions,
                    "retries": result.retries,
                    "nacks": result.nacks,
                    "final_image": {
                        str(block): token
                        for block, token in sorted(result.final_image.items())
                    },
                    "watchdog": result.watchdog_failure,
                }
                for protocol, result in self.results.items()
            },
        }


def _compare_results(
    trace: MemoryTrace, results: Dict[ProtocolName, ReplayResult]
) -> List[str]:
    """Cross-protocol (and model) comparison of replay outcomes."""
    failures: List[str] = []
    for result in results.values():
        failures.extend(result.failures())
    complete = {
        protocol: result
        for protocol, result in results.items()
        if result.completed == result.operations
    }
    predicted = trace.predicted_final_tokens()
    for protocol, result in complete.items():
        for block, want in predicted.items():
            got = result.final_image.get(block, 0)
            if got != want:
                failures.append(
                    f"{protocol}: block {block} ended with token {got}, "
                    f"trace predicts {want}"
                )
    protocols = list(complete)
    if len(protocols) >= 2:
        reference = protocols[0]
        base = complete[reference]
        # Eviction-driven writebacks depend on LRU timing, which is protocol
        # specific, so `performed` flags only compare when no protocol
        # evicted (loop-invariant across the pairwise comparisons below).
        compare_performed = all(r.evictions == 0 for r in complete.values())
        for other in protocols[1:]:
            candidate = complete[other]
            for block in range(trace.num_blocks):
                left = base.final_image.get(block, 0)
                right = candidate.final_image.get(block, 0)
                if left != right:
                    failures.append(
                        f"final image diverges on block {block}: "
                        f"{reference}={left} vs {other}={right}"
                    )
            if trace.mode == STRICT:
                for node in range(trace.num_processors):
                    for slot, (lhs, rhs) in enumerate(
                        zip(base.observations[node], candidate.observations[node])
                    ):
                        if lhs is None or rhs is None:
                            continue
                        same = (
                            lhs[:3] == rhs[:3]
                            if not compare_performed
                            else lhs == rhs
                        )
                        if not same:
                            failures.append(
                                f"observation diverges at node {node} op "
                                f"{slot}: {reference}={lhs} vs {other}={rhs}"
                            )
    return failures


def run_differential(
    trace: MemoryTrace,
    protocols: Sequence[ProtocolName] = ALL_PROTOCOLS,
    replay: ReplayConfig = ReplayConfig(),
    acquire: Optional[SystemAcquirer] = None,
) -> DifferentialResult:
    """Replay ``trace`` under every protocol and cross-check the outcomes."""
    if acquire is None:
        acquire = _build_system
    results: Dict[ProtocolName, ReplayResult] = {}
    for protocol in protocols:
        config = replay.system_config(trace, protocol)
        system = acquire(config, empty_trace_workload(trace.num_processors))
        replayer = TraceReplayer(system, trace, replay)
        results[ProtocolName(protocol)] = replayer.run()
    failures = _compare_results(trace, results)
    if trace.mode == STRICT:
        failures.extend(_check_reads_against_model(trace, results))
    return DifferentialResult(
        trace=trace, replay=replay, results=results, failures=failures
    )


def _check_reads_against_model(
    trace: MemoryTrace, results: Dict[ProtocolName, ReplayResult]
) -> List[str]:
    """Strict replays are fully determined: every read must match the model."""
    failures: List[str] = []
    expected = trace.expected_read_tokens()
    slot_of: Dict[int, Tuple[int, int]] = {}
    for node, stream in trace.per_node().items():
        for slot, (index, _op) in enumerate(stream):
            slot_of[index] = (node, slot)
    for protocol, result in results.items():
        if result.completed != result.operations:
            continue
        for index, want in expected.items():
            node, slot = slot_of[index]
            observed = result.observations[node][slot]
            if observed is None:
                continue
            got = observed[2]
            if got != want:
                failures.append(
                    f"{protocol}: node {node} read op {slot} observed token "
                    f"{got}, the trace serialisation requires {want}"
                )
    return failures
