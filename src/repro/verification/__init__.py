"""Protocol verification: invariants, value consistency, random testing."""

from .consistency import ConsistencyChecker, ObservedAccess
from .invariants import InvariantReport, check_invariants
from .random_tester import RandomProtocolTester, RandomTestResult, run_random_campaign

__all__ = [
    "ConsistencyChecker",
    "ObservedAccess",
    "InvariantReport",
    "check_invariants",
    "RandomProtocolTester",
    "RandomTestResult",
    "run_random_campaign",
]
