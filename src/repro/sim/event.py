"""Events scheduled on the discrete-event simulator.

The event core is the hottest code in the repository: every message hop,
link occupancy and sequencer step allocates one :class:`Event` and pushes it
through the scheduler's heap.  The class is therefore ``__slots__``-based (no
instance ``__dict__``, no dataclass machinery) and ordering lives in the
scheduler's ``(time, sequence, event)`` heap tuples rather than in rich
comparison methods on the event itself.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class Event:
    """A callback scheduled to run at an absolute simulation time.

    Events are ordered by ``(time, sequence)`` — ties broken by insertion
    order — which keeps the simulation deterministic for a fixed seed.  The
    ordering itself is enforced by the scheduler's heap keys; two events never
    need to be compared directly.
    """

    __slots__ = ("time", "sequence", "callback", "label", "cancelled", "_scheduler")

    def __init__(
        self,
        time: int,
        sequence: int,
        callback: Callable[[], Any],
        label: str = "",
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.label = label
        self.cancelled = False
        #: Back-pointer used for live-pending accounting; the scheduler clears
        #: it when the event leaves the queue (fired, skipped or drained).
        self._scheduler: Optional[Any] = None

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when it is dequeued."""
        if self.cancelled:
            return
        self.cancelled = True
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler._note_cancel()

    def fire(self) -> None:
        """Run the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.sequence}, {self.label!r}{flag})"
