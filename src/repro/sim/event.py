"""Events scheduled on the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A callback scheduled to run at an absolute simulation time.

    Events compare by ``(time, sequence)`` so that ties are broken by insertion
    order, which keeps the simulation deterministic for a fixed seed.
    """

    time: int
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when it is dequeued."""
        self.cancelled = True

    def fire(self) -> None:
        """Run the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback()
