"""Discrete-event simulation engine.

The engine ships two interchangeable backends — the pure-Python reference
implementation and the compiled ``repro._core`` event core — selected via
``$REPRO_BACKEND`` (``pure|compiled|auto``, default ``auto``: compiled when
the extension imports, pure otherwise).  :func:`active_scheduler_class`
resolves the selection lazily; see :mod:`repro._core` for the contract.
"""

from .._core import backend_info, set_backend, use_backend
from .arena import SimulationArena
from .component import Component
from .event import Event
from .scheduler import Scheduler, active_scheduler_class
from .simulator import Simulator

__all__ = [
    "Component",
    "Event",
    "Scheduler",
    "SimulationArena",
    "Simulator",
    "active_scheduler_class",
    "backend_info",
    "set_backend",
    "use_backend",
]
