"""Discrete-event simulation engine."""

from .arena import SimulationArena
from .component import Component
from .event import Event
from .scheduler import Scheduler
from .simulator import Simulator

__all__ = ["Component", "Event", "Scheduler", "SimulationArena", "Simulator"]
