"""Top-level simulation facade tying the scheduler and statistics together."""

from __future__ import annotations

from typing import Callable, Optional

from ..common.stats import StatsRegistry
from ..errors import SimulationError
from .scheduler import Scheduler, active_scheduler_class


class Simulator:
    """Owns the scheduler and statistics registry for one simulation run."""

    def __init__(self) -> None:
        # Backend resolved at construction time (not import time) so an
        # in-process backend switch — the parametrized test fixture, the
        # interleaved benchmark A/B — affects the next system built.
        self.scheduler: Scheduler = active_scheduler_class()()
        self.stats = StatsRegistry()
        self._finished = False

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self.scheduler.now

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        stop_flag=None,
    ) -> int:
        """Run the simulation; see :meth:`Scheduler.run` for the stop rules."""
        if self._finished:
            raise SimulationError("simulator has already been finished")
        return self.scheduler.run(
            until=until, max_events=max_events, stop_when=stop_when, stop_flag=stop_flag
        )

    def run_until_quiescent(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain, guarding against runaway simulations."""
        fired = self.run(max_events=max_events)
        if self.scheduler.pending and fired >= max_events:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events; "
                "a protocol livelock or an unbounded workload is likely"
            )
        return fired

    def finish(self) -> None:
        """Discard pending events and mark the run as complete."""
        self.scheduler.drain()
        self._finished = True

    def reset(self) -> None:
        """Re-arm for another run: time zero, empty queue, statistics reset.

        Statistics registered at system construction are zeroed *in place*
        (prebound handles stay valid); statistics created lazily during the
        previous run are dropped entirely, so a reset simulator reports
        exactly the same statistic set a freshly built one would.
        """
        self.scheduler.reset()
        self.stats.reset()
        self._finished = False
