"""Base class for simulated hardware components."""

from __future__ import annotations

from typing import Any, Callable

from ..common.stats import StatsRegistry
from .event import Event
from .scheduler import Scheduler


class Component:
    """Anything that lives on the simulated clock and records statistics.

    A component holds a reference to the shared :class:`Scheduler` and the
    run-wide :class:`StatsRegistry`; subclasses use :meth:`schedule` to model
    latency and the ``stats`` attribute to record metrics under a name prefixed
    with the component's own name.
    """

    def __init__(self, name: str, scheduler: Scheduler, stats: StatsRegistry) -> None:
        self.name = name
        self.scheduler = scheduler
        self.stats = stats

    @property
    def now(self) -> int:
        """Current simulation time."""
        return self.scheduler.now

    def schedule(self, delay: int, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` cycles, tagged with this component."""
        return self.scheduler.schedule_after(delay, callback, f"{self.name}:{label}")

    def stat_name(self, suffix: str) -> str:
        """Fully qualified statistic name for this component."""
        return f"{self.name}.{suffix}"

    def count(self, suffix: str, amount: int = 1) -> None:
        """Increment a counter scoped to this component."""
        self.stats.counter(self.stat_name(suffix)).increment(amount)

    def record(self, suffix: str, value: float) -> None:
        """Record a sample in a running mean scoped to this component."""
        self.stats.running_mean(self.stat_name(suffix)).record(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
