"""Base class for simulated hardware components."""

from __future__ import annotations

from typing import Any, Callable

from ..common.stats import StatsRegistry
from .event import Event
from .scheduler import Scheduler


class Component:
    """Anything that lives on the simulated clock and records statistics.

    A component holds a reference to the shared :class:`Scheduler` and the
    run-wide :class:`StatsRegistry`; subclasses use :meth:`schedule` to model
    latency and the ``stats`` attribute to record metrics under a name prefixed
    with the component's own name.
    """

    def __init__(self, name: str, scheduler: Scheduler, stats: StatsRegistry) -> None:
        self.name = name
        self.scheduler = scheduler
        self.stats = stats
        # Hot-path caches: formatted labels and resolved stat handles, keyed by
        # the (small, fixed) set of suffixes each component uses.
        self._label_prefix = name + ":"
        self._label_cache: dict = {}
        self._counter_cache: dict = {}
        self._mean_cache: dict = {}

    @property
    def now(self) -> int:
        """Current simulation time."""
        return self.scheduler.now

    def schedule(self, delay: int, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` cycles, tagged with this component."""
        full = self._label_cache.get(label)
        if full is None:
            full = self._label_prefix + label
            self._label_cache[label] = full
        return self.scheduler.schedule_after(delay, callback, full)

    def schedule_fast(self, delay: int, callback: Callable[[], Any], label: str = "") -> None:
        """Like :meth:`schedule` but non-cancellable and allocation-free.

        Use for fire-and-forget latency modelling on hot paths; there is no
        returned handle to cancel.
        """
        full = self._label_cache.get(label)
        if full is None:
            full = self._label_prefix + label
            self._label_cache[label] = full
        self.scheduler.schedule_after_fast(delay, callback, full)

    def schedule_fast1(
        self, delay: int, callback: Callable[[Any], Any], arg: Any, label: str = ""
    ) -> None:
        """Like :meth:`schedule_fast` but for ``callback(arg)``.

        The argument rides in the heap entry, so call sites reuse one bound
        callable instead of allocating a closure or partial per event.
        """
        full = self._label_cache.get(label)
        if full is None:
            full = self._label_prefix + label
            self._label_cache[label] = full
        self.scheduler.schedule_after_fast1(delay, callback, arg, full)

    def full_label(self, label: str) -> str:
        """The component-prefixed event label for ``label``, memoised.

        Hot call sites resolve their labels once at construction and pass the
        result straight to the scheduler fast-path API, skipping the per-call
        cache probe in :meth:`schedule_fast`/:meth:`schedule_fast1`.
        """
        full = self._label_cache.get(label)
        if full is None:
            full = self._label_cache[label] = self._label_prefix + label
        return full

    def reset_stat_caches(self) -> None:
        """Drop the lazily resolved stat handles (label caches stay).

        Part of the system reset protocol: the registry prunes statistics
        created after its construction baseline, so any cached handle for a
        pruned name would silently count into an unregistered object.  The
        next :meth:`count`/:meth:`record` re-resolves through the registry —
        baseline names get the same (just-zeroed) object back.
        """
        self._counter_cache.clear()
        self._mean_cache.clear()

    def stat_name(self, suffix: str) -> str:
        """Fully qualified statistic name for this component."""
        return f"{self.name}.{suffix}"

    def count(self, suffix: str, amount: int = 1) -> None:
        """Increment a counter scoped to this component."""
        counter = self._counter_cache.get(suffix)
        if counter is None:
            counter = self.stats.counter(self.stat_name(suffix))
            self._counter_cache[suffix] = counter
        counter._count += amount

    def record(self, suffix: str, value: float) -> None:
        """Record a sample in a running mean scoped to this component."""
        mean = self._mean_cache.get(suffix)
        if mean is None:
            mean = self.stats.running_mean(self.stat_name(suffix))
            self._mean_cache[suffix] = mean
        mean.record(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
