"""Simulation arena: pooled hot objects and GC control for sweep-scale runs.

A PAPER-scale reproduction executes thousands of short ``simulate()`` runs,
and profiling shows two allocation sinks outside the event loop proper:

* the per-message/per-miss object churn (`Message`, `Transaction`) that the
  collector then has to trace, and
* the cyclic-GC passes themselves, which scan the (large, mostly immortal)
  system graph — nodes, compiled dispatch tables, link histories — once per
  generation threshold even though none of it is garbage.

:class:`SimulationArena` addresses both.  It keeps free lists of dead
``Message`` and ``Transaction`` instances, recycled through their ordinary
``__init__`` so a pooled object is field-for-field identical to a fresh one,
and it provides a reentrant :meth:`runtime` guard that disables the cyclic
collector (and ``gc.freeze()``-es the already-constructed system graph out of
future scans) for the duration of a run, restoring the previous GC state in a
``finally``.

Pooling is strictly opt-in: an arena is attached to a scheduler
(``scheduler.arena``) when a :class:`~repro.system.multiprocessor.
MultiprocessorSystem` is built with one, and only the *unordered* network
releases messages back — a point-to-point message has exactly one delivery and
no handler retains it, whereas totally-ordered requests can be parked in
deferred/held queues and are therefore never recycled.  Transactions are
released by the cache controller when they complete (their MSHR entry is
popped and the issuer's callback has run).  Object identity is never reused
while a reference can still be live, and recycled transactions draw fresh ids
from the global counter so stale-response filtering keeps working.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..coherence.transaction import Transaction
    from ..interconnect.message import Message

#: Free-list size caps: beyond this the pool stops growing and lets excess
#: objects die normally.  A run's live population is bounded by the number of
#: in-flight messages/misses, which is far below these at any paper scale.
_MAX_POOLED_MESSAGES = 4096
_MAX_POOLED_TRANSACTIONS = 4096


class SimulationArena:
    """Free-list pools for hot simulation objects plus run-scoped GC control."""

    __slots__ = (
        "_messages",
        "_transactions",
        "_message_cls",
        "_transaction_cls",
        "_depth",
        "_gc_was_enabled",
        "_froze",
    )

    def __init__(self) -> None:
        # Imported here, not at module top: the arena lives in ``sim`` but
        # pools classes from packages that themselves import ``sim`` at load
        # time.  By the time an arena is instantiated both are fully loaded.
        from ..coherence.transaction import Transaction
        from ..interconnect.message import Message

        self._message_cls = Message
        self._transaction_cls = Transaction
        self._messages: List[Message] = []
        self._transactions: List[Transaction] = []
        self._depth = 0
        self._gc_was_enabled = False
        self._froze = False

    # --------------------------------------------------------------- messages

    def message(self, **fields) -> Message:
        """A :class:`Message` initialised with ``fields``, recycled if possible."""
        pool = self._messages
        if pool:
            message = pool.pop()
            message.__init__(**fields)
            return message
        return self._message_cls(**fields)

    def release_message(self, message: Message) -> None:
        """Return a dead message (single delivery completed) to the pool."""
        pool = self._messages
        if len(pool) < _MAX_POOLED_MESSAGES:
            pool.append(message)

    # ------------------------------------------------------------ transactions

    def transaction(self, **fields) -> Transaction:
        """A :class:`Transaction` initialised with ``fields``, recycled if possible.

        Re-running the dataclass ``__init__`` reassigns every slot, including a
        *fresh* ``transaction_id`` from the global counter — id reuse would let
        a stale in-flight response match a new transaction.
        """
        pool = self._transactions
        if pool:
            transaction = pool.pop()
            transaction.__init__(**fields)
            return transaction
        return self._transaction_cls(**fields)

    def release_transaction(self, transaction: Transaction) -> None:
        """Return a completed transaction (MSHR entry popped) to the pool."""
        pool = self._transactions
        if len(pool) < _MAX_POOLED_TRANSACTIONS:
            pool.append(transaction)

    # ------------------------------------------------------------- GC control

    @contextmanager
    def runtime(self) -> Iterator["SimulationArena"]:
        """Disable (and freeze out of) the cyclic GC for the guarded block.

        Reentrant: nested guards (a batched sweep around individual runs) only
        touch the collector at the outermost level.  The previous GC state is
        restored in a ``finally`` even if the simulation raises.
        """
        self._depth += 1
        if self._depth == 1:
            self._gc_was_enabled = gc.isenabled()
            if self._gc_was_enabled:
                gc.disable()
            freeze = getattr(gc, "freeze", None)
            if freeze is not None:
                freeze()
                self._froze = True
        try:
            yield self
        finally:
            self._depth -= 1
            if self._depth == 0:
                if self._froze:
                    gc.unfreeze()
                    self._froze = False
                if self._gc_was_enabled:
                    gc.enable()

    # -------------------------------------------------------------- inspection

    @property
    def pooled_messages(self) -> int:
        """Number of messages currently waiting in the free list."""
        return len(self._messages)

    @property
    def pooled_transactions(self) -> int:
        """Number of transactions currently waiting in the free list."""
        return len(self._transactions)

    def clear(self) -> None:
        """Drop both free lists (e.g. between incompatible batch keys)."""
        self._messages.clear()
        self._transactions.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationArena(messages={len(self._messages)}, "
            f"transactions={len(self._transactions)}, depth={self._depth})"
        )
