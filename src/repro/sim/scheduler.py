"""The event queue at the heart of the discrete-event simulator.

This is the repository's hottest loop: a full figure reproduction fires
hundreds of millions of events through it.  The design choices are therefore
throughput-driven:

* the heap holds plain ``(time, sequence, event)`` tuples, so heap sifts
  compare machine integers in C instead of calling rich-comparison methods;
* cancellation is *lazy*: cancelled events stay queued (cheap ``O(1)``
  cancel) and are discarded when they surface at the head, with a periodic
  compaction pass that rebuilds the heap when cancelled entries dominate;
* :meth:`run` inlines the pop/fire fast path — no per-event method calls
  beyond the event callback itself.

``pending`` counts only *live* (non-cancelled) events, and ``run(until=...)``
skips cancelled heads before peeking so a stale timeout at the front of the
queue can neither stop the clock early nor leak an event past ``until``.
"""

from __future__ import annotations

import heapq
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError
from .event import Event

#: Compaction threshold: rebuild the heap once this many cancelled events are
#: queued *and* they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 64

#: Sentinel bound for `run`'s until/max_events checks: larger than any event
#: time or counter, so "no bound" needs no per-event None test.
_NO_BOUND = float("inf")

_new_event = object.__new__


class Scheduler:
    """A time-ordered priority queue of :class:`Event` objects."""

    __slots__ = ("_queue", "now", "_sequence", "_fired", "_cancelled", "on_fire")

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Event]] = []
        #: Current simulation time in cycles.  A plain attribute (not a
        #: property): it is read on every schedule call and in most event
        #: callbacks, where a Python-level descriptor call is measurable.
        self.now = 0
        self._sequence = 0
        self._fired = 0
        self._cancelled = 0
        #: Optional per-fired-event hook ``(time, label) -> None`` used by the
        #: golden-trace tests and ad-hoc tracing; ``None`` costs one branch.
        self.on_fire: Optional[Callable[[int, str], None]] = None

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled

    @property
    def fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    def schedule_at(
        self, time: int, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before current "
                f"time {self.now}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        # Inlined Event construction (object.__new__ + slot stores) to skip
        # the __init__ call on the hottest allocation in the simulator.
        event = _new_event(Event)
        event.time = time
        event.sequence = sequence
        event.callback = callback
        event.label = label
        event.cancelled = False
        event._scheduler = self
        _heappush(self._queue, (time, sequence, event))
        return event

    def schedule_after(
        self, delay: int, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        time = self.now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        event = _new_event(Event)
        event.time = time
        event.sequence = sequence
        event.callback = callback
        event.label = label
        event.cancelled = False
        event._scheduler = self
        _heappush(self._queue, (time, sequence, event))
        return event

    # ------------------------------------------------------------ fast paths

    def schedule_at_fast(
        self, time: int, callback: Callable[[], Any], label: str = ""
    ) -> None:
        """Schedule a *non-cancellable* callback at absolute cycle ``time``.

        The hot internal call sites (network hops, sequencer steps) never
        cancel their events, so this path pushes a bare ``(time, sequence,
        callback, label)`` tuple and skips the :class:`Event` allocation
        entirely.  Use :meth:`schedule_at` when the caller needs the returned
        handle.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before current "
                f"time {self.now}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        _heappush(self._queue, (time, sequence, callback, label))

    def schedule_after_fast(
        self, delay: int, callback: Callable[[], Any], label: str = ""
    ) -> None:
        """Schedule a *non-cancellable* callback ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        time = self.now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        _heappush(self._queue, (time, sequence, callback, label))

    def schedule_at_fast1(
        self, time: int, callback: Callable[[Any], Any], arg: Any, label: str = ""
    ) -> None:
        """Fast-path schedule of ``callback(arg)`` at absolute cycle ``time``.

        Carrying the single argument in the heap entry lets hot call sites
        reuse one prebound callable per (node, kind) instead of allocating a
        ``partial`` per event.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before current "
                f"time {self.now}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        _heappush(self._queue, (time, sequence, callback, label, arg))

    def schedule_after_fast1(
        self, delay: int, callback: Callable[[Any], Any], arg: Any, label: str = ""
    ) -> None:
        """Fast-path schedule of ``callback(arg)`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        time = self.now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        _heappush(self._queue, (time, sequence, callback, label, arg))

    # ------------------------------------------------------- lazy cancellation

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` while the event is still queued."""
        self._cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap in one pass.

        In place (slice assignment, not rebinding): ``run()`` and ``step()``
        hold a local alias to the queue list, and cancellation — hence
        compaction — can be triggered from inside a fired callback.
        """
        self._queue[:] = [
            entry
            for entry in self._queue
            if len(entry) != 3 or not entry[2].cancelled
        ]
        heapq.heapify(self._queue)
        self._cancelled = 0

    # ---------------------------------------------------------------- running

    def step(self) -> Optional[Event]:
        """Pop and fire the next non-cancelled event; return it (or None).

        Events scheduled through the fast path have no :class:`Event` handle;
        for those, a transient handle is materialised for the return value.
        """
        queue = self._queue
        while queue:
            entry = _heappop(queue)
            if len(entry) != 3:
                time, _seq, callback, label = entry[:4]
                self.now = time
                if len(entry) == 5:
                    callback(entry[4])
                else:
                    callback()
                self._fired += 1
                if self.on_fire is not None:
                    self.on_fire(time, label)
                return Event(time, entry[1], callback, label)
            event = entry[2]
            event._scheduler = None
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = event.time
            event.callback()
            self._fired += 1
            if self.on_fire is not None:
                self.on_fire(event.time, event.label)
            return event
        return None

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        stop_flag: Optional[List[bool]] = None,
    ) -> int:
        """Run events until the queue drains or a stop condition is met.

        ``stop_when`` is a predicate called between events; ``stop_flag`` is a
        cheaper alternative for drivers that *know* when they are done: a
        one-element list whose slot 0 an event callback flips to True.
        Checking it costs a C-level subscript per event instead of a Python
        call.  Returns the number of events fired by this call.

        The loop keeps the fired-event counter in a local and hoists the
        ``on_fire`` hook (install it *before* calling :meth:`run`); the
        ``until``/``max_events`` bounds are normalised to plain comparisons so
        the per-event bookkeeping is a handful of C-level operations.
        """
        queue = self._queue
        heappop = _heappop
        fired_before = fired = self._fired
        # Normalise the bounds so the per-event checks are single comparisons:
        # float('inf') compares against ints in C.
        until_bound = _NO_BOUND if until is None else until
        limit = _NO_BOUND if max_events is None else fired_before + max_events
        on_fire = self.on_fire
        try:
            while queue:
                if stop_flag is not None and stop_flag[0]:
                    break
                # Pop-first fast path: re-pushing the entry on a stop condition
                # happens at most once per call, while a peek would cost a heap
                # access on every iteration.
                entry = heappop(queue)
                size = len(entry)
                if size == 3:
                    event = entry[2]
                    if event.cancelled:
                        event._scheduler = None
                        self._cancelled -= 1
                        continue
                else:
                    # Fast-path entry: (time, sequence, callback, label[, arg]),
                    # never cancellable.
                    event = None
                time = entry[0]
                if time > until_bound:
                    _heappush(queue, entry)
                    self.now = until
                    break
                if fired >= limit or (stop_when is not None and stop_when()):
                    _heappush(queue, entry)
                    break
                self.now = time
                if event is None:
                    if size == 5:
                        entry[2](entry[4])
                    else:
                        entry[2]()
                else:
                    event._scheduler = None
                    event.callback()
                fired += 1
                if on_fire is not None:
                    on_fire(time, entry[3] if event is None else event.label)
        finally:
            self._fired = fired
        return fired - fired_before

    def drain(self) -> None:
        """Discard all pending events without running them."""
        for entry in self._queue:
            if len(entry) == 3 and isinstance(entry[2], Event):
                entry[2]._scheduler = None
        self._queue.clear()
        self._cancelled = 0
