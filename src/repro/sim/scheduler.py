"""The event queue at the heart of the discrete-event simulator.

This is the repository's hottest loop: a full figure reproduction fires
hundreds of millions of events through it.  The design choices are therefore
throughput-driven:

* the queue is a *bucket queue*: a dict mapping each distinct timestamp to a
  FIFO list of entries, plus a small heap of the distinct timestamps
  themselves.  Protocol traffic is bursty — a broadcast fans out to every
  node at the same cycle — so the multiprocessor workloads average ~5 events
  per distinct time, and a push is usually a C-level ``dict.get`` +
  ``list.append`` instead of a heap sift;
* entries are plain tuples — ``(time, sequence, event)`` for cancellable
  events, ``(time, sequence, callback, label[, arg])`` for the fast paths —
  appended in schedule order, which *is* ``sequence`` order, so FIFO draining
  reproduces the classic ``(time, sequence)`` heap order exactly;
* cancellation is *lazy*: cancelled events stay queued (cheap ``O(1)``
  cancel) and are skipped when their bucket drains, with a periodic
  compaction pass when cancelled entries dominate;
* :meth:`run` inlines the drain fast path — no per-event method calls beyond
  the event callback itself, and the clock and bound checks are paid once per
  *bucket* rather than once per event.

``pending`` counts only *live* (non-cancelled) events, and ``run(until=...)``
stops the clock at ``until`` without firing or leaking any later event,
cancelled heads included.

The network fast paths (see :mod:`repro.interconnect.ordered_network` /
``unordered_network``) push entries directly into ``_buckets``/``_times``;
both containers are therefore cleared *in place* on :meth:`drain`/:meth:`reset`
so compiled closures holding references stay valid across system resets.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Dict, List, Optional

from .. import _core
from ..errors import SimulationError
from .event import Event

#: Compaction threshold: rebuild the buckets once this many cancelled events
#: are queued *and* they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 64

#: Sentinel bound for `run`'s until/max_events checks: larger than any event
#: time or counter, so "no bound" needs no per-event None test.
_NO_BOUND = float("inf")

_new_event = object.__new__


class Scheduler:
    """A time-ordered bucket queue of simulation events."""

    __slots__ = (
        "_buckets",
        "_times",
        "now",
        "_sequence",
        "_fired",
        "_cancelled",
        "_compact_watermark",
        "_active_time",
        "on_fire",
        "_fire_hooks",
        "_installed_fire",
        "arena",
    )

    def __init__(self) -> None:
        #: time -> FIFO list of entries scheduled for that cycle.
        self._buckets: Dict[int, list] = {}
        #: Min-heap of bucket timestamps.  May contain stale times whose
        #: bucket was exhausted or compacted away; the drain loops skip those.
        self._times: List[int] = []
        #: Current simulation time in cycles.  A plain attribute (not a
        #: property): it is read on every schedule call and in most event
        #: callbacks, where a Python-level descriptor call is measurable.
        self.now = 0
        self._sequence = 0
        self._fired = 0
        self._cancelled = 0
        #: Outstanding-cancel count at which the next compaction check runs;
        #: backed off geometrically by _note_cancel (see there).
        self._compact_watermark = _COMPACT_MIN_CANCELLED
        #: Timestamp of the bucket currently being drained by run()/step();
        #: compaction skips it (the drain loop holds a live index into it).
        self._active_time: Optional[int] = None
        #: Optional per-fired-event hook ``(time, label) -> None`` used by the
        #: golden-trace tests and ad-hoc tracing; ``None`` costs one branch.
        #: Multiple observers (e.g. a golden-trace recorder plus a
        #: verification event ring buffer) subscribe through
        #: :meth:`add_fire_hook`, which composes them into this one callable.
        self.on_fire: Optional[Callable[[int, str], None]] = None
        #: Subscribed fire hooks backing the composed ``on_fire`` callable.
        #: Empty while ``on_fire`` was assigned directly (the legacy single
        #: -observer surface, still used by the golden-trace tests).
        self._fire_hooks: List[Callable[[int, str], None]] = []
        #: What the hook machinery last installed into ``on_fire``; a
        #: mismatch at the next add/remove means the caller assigned
        #: ``on_fire`` directly in between, and that assignment wins.
        self._installed_fire: Optional[Callable[[int, str], None]] = None
        #: Optional :class:`repro.sim.arena.SimulationArena` shared by every
        #: component built on this scheduler.  Controllers and networks consult
        #: it once at construction to prebind their pooled allocation/release
        #: paths; ``None`` means plain allocation everywhere.
        self.arena = None

    # ------------------------------------------------------------- accounting

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(map(len, self._buckets.values())) - self._cancelled

    @property
    def fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    # -------------------------------------------------------------- fire hooks

    def add_fire_hook(self, hook: Callable[[int, str], None]) -> None:
        """Subscribe ``hook(time, label)`` to every fired event.

        Hooks compose: any number of observers may subscribe and each sees
        every event, in subscription order.  Assigning ``on_fire`` directly
        (the legacy single-observer surface) stays authoritative: whatever
        was assigned since the last add/remove replaces the whole observer
        set and is adopted as the sole base subscriber.  Hooks survive
        :meth:`reset` like ``on_fire`` does — they belong to the harness
        around the scheduler, not to one run.
        """
        self._sync_external_assignment()
        self._fire_hooks.append(hook)
        self._rebind_fire_hooks()

    def remove_fire_hook(self, hook: Callable[[int, str], None]) -> None:
        """Unsubscribe a hook added with :meth:`add_fire_hook` (idempotent)."""
        self._sync_external_assignment()
        try:
            self._fire_hooks.remove(hook)
        except ValueError:
            return
        self._rebind_fire_hooks()

    def _sync_external_assignment(self) -> None:
        """Adopt a direct ``on_fire`` assignment made since the last rebind.

        The legacy surface wins: a caller that assigned (or cleared)
        ``on_fire`` directly replaced the observer set, so the hook list is
        rebuilt from the current value rather than resurrecting stale
        subscribers.
        """
        if self.on_fire is not self._installed_fire:
            self._fire_hooks.clear()
            if self.on_fire is not None:
                self._fire_hooks.append(self.on_fire)

    def _rebind_fire_hooks(self) -> None:
        hooks = self._fire_hooks
        if not hooks:
            self.on_fire = None
        elif len(hooks) == 1:
            self.on_fire = hooks[0]
        else:
            chain = tuple(hooks)

            def _fan_out(time: int, label: str) -> None:
                for fire_hook in chain:
                    fire_hook(time, label)

            self.on_fire = _fan_out
        self._installed_fire = self.on_fire

    # -------------------------------------------------------------- scheduling

    def _push(self, time: int, entry: tuple) -> None:
        """Append ``entry`` to the bucket for ``time`` (creating it if new)."""
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [entry]
            _heappush(self._times, time)
        else:
            bucket.append(entry)

    def schedule_at(
        self, time: int, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before current "
                f"time {self.now}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        # Inlined Event construction (object.__new__ + slot stores) to skip
        # the __init__ call on the hottest allocation in the simulator.
        event = _new_event(Event)
        event.time = time
        event.sequence = sequence
        event.callback = callback
        event.label = label
        event.cancelled = False
        event._scheduler = self
        self._push(time, (time, sequence, event))
        return event

    def schedule_after(
        self, delay: int, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now + delay, callback, label)

    # ------------------------------------------------------------ fast paths

    def schedule_at_fast(
        self, time: int, callback: Callable[[], Any], label: str = ""
    ) -> None:
        """Schedule a *non-cancellable* callback at absolute cycle ``time``.

        The hot internal call sites (network hops, sequencer steps) never
        cancel their events, so this path appends a bare ``(time, sequence,
        callback, label)`` tuple and skips the :class:`Event` allocation
        entirely.  Use :meth:`schedule_at` when the caller needs the returned
        handle.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before current "
                f"time {self.now}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        self._push(time, (time, sequence, callback, label))

    def schedule_after_fast(
        self, delay: int, callback: Callable[[], Any], label: str = ""
    ) -> None:
        """Schedule a *non-cancellable* callback ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        time = self.now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        # _push inlined: this is called between every pair of protocol events.
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [(time, sequence, callback, label)]
            _heappush(self._times, time)
        else:
            bucket.append((time, sequence, callback, label))

    def schedule_at_fast1(
        self, time: int, callback: Callable[[Any], Any], arg: Any, label: str = ""
    ) -> None:
        """Fast-path schedule of ``callback(arg)`` at absolute cycle ``time``.

        Carrying the single argument in the queue entry lets hot call sites
        reuse one prebound callable per (node, kind) instead of allocating a
        ``partial`` per event.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before current "
                f"time {self.now}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        self._push(time, (time, sequence, callback, label, arg))

    def schedule_after_fast1(
        self, delay: int, callback: Callable[[Any], Any], arg: Any, label: str = ""
    ) -> None:
        """Fast-path schedule of ``callback(arg)`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        time = self.now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        # _push inlined: the single-argument fast path carries most protocol
        # latency modelling (data responses, markers, forwards, retries).
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [(time, sequence, callback, label, arg)]
            _heappush(self._times, time)
        else:
            bucket.append((time, sequence, callback, label, arg))

    # ------------------------------------------------------- lazy cancellation

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` while the event is still queued.

        Sizing the queue means summing every bucket, so the check runs only
        at a geometrically backed-off watermark: whatever a compaction
        attempt leaves uncollected (cancelled entries in the actively
        draining bucket are skipped), the next attempt waits until the
        outstanding count doubles — keeping ``cancel()`` amortised O(1) even
        for cancel-heavy workloads.
        """
        self._cancelled += 1
        if self._cancelled >= self._compact_watermark:
            total = sum(map(len, self._buckets.values()))
            if self._cancelled * 2 > total:
                self._compact()
            self._compact_watermark = max(
                _COMPACT_MIN_CANCELLED, self._cancelled * 2
            )

    def _compact(self) -> None:
        """Physically drop cancelled entries from every idle bucket.

        The bucket currently being drained (if any) is skipped — the drain
        loop holds a live index into it; its cancelled entries are skipped
        (and accounted) when they surface.  Emptied buckets are deleted; their
        timestamps go stale in the heap and are discarded on pop.
        """
        buckets = self._buckets
        active = self._active_time
        for time in list(buckets):
            if time == active:
                continue
            entries = buckets[time]
            live = [
                entry
                for entry in entries
                if len(entry) != 3 or not entry[2].cancelled
            ]
            dropped = len(entries) - len(live)
            if not dropped:
                continue
            for entry in entries:
                if len(entry) == 3 and entry[2].cancelled:
                    entry[2]._scheduler = None
            self._cancelled -= dropped
            if live:
                entries[:] = live
            else:
                del buckets[time]

    # ---------------------------------------------------------------- running

    def step(self) -> Optional[Event]:
        """Pop and fire the next non-cancelled event; return it (or None).

        Events scheduled through the fast path have no :class:`Event` handle;
        for those, a transient handle is materialised for the return value.
        """
        buckets = self._buckets
        times = self._times
        while times:
            time = times[0]
            bucket = buckets.get(time)
            if not bucket:
                _heappop(times)
                if bucket is not None:
                    del buckets[time]
                continue
            entry = bucket.pop(0)
            if not bucket:
                del buckets[time]
                _heappop(times)
            if len(entry) != 3:
                callback = entry[2]
                self.now = time
                self._active_time = time
                try:
                    if len(entry) == 5:
                        callback(entry[4])
                    else:
                        callback()
                finally:
                    self._active_time = None
                self._fired += 1
                if self.on_fire is not None:
                    self.on_fire(time, entry[3])
                return Event(time, entry[1], callback, entry[3])
            event = entry[2]
            event._scheduler = None
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = time
            self._active_time = time
            try:
                event.callback()
            finally:
                self._active_time = None
            self._fired += 1
            if self.on_fire is not None:
                self.on_fire(event.time, event.label)
            return event
        return None

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        stop_flag: Optional[List[bool]] = None,
    ) -> int:
        """Run events until the queue drains or a stop condition is met.

        ``stop_when`` is a predicate called between events; ``stop_flag`` is a
        cheaper alternative for drivers that *know* when they are done: a
        one-element list whose slot 0 an event callback flips to True.
        Checking it costs a C-level subscript per event instead of a Python
        call.  Returns the number of events fired by this call.

        Two loops share the semantics: a specialised one for the driver
        configuration every multiprocessor run uses (stop cell, no predicate,
        no trace hook) whose per-event work is a subscript, two bound checks
        and the callback — the clock advances once per *bucket* — and a
        generic one carrying ``stop_when``/``on_fire`` support.  Events at
        one timestamp fire in scheduling order (the bucket is FIFO), exactly
        as the previous ``(time, sequence)`` heap ordered them.
        """
        buckets = self._buckets
        times = self._times
        fired_before = fired = self._fired
        # Normalise the bounds so the checks are single comparisons:
        # float('inf') compares against ints in C.
        until_bound = _NO_BOUND if until is None else until
        limit = _NO_BOUND if max_events is None else fired_before + max_events
        on_fire = self.on_fire
        fast = stop_when is None and on_fire is None and stop_flag is not None
        try:
            while times:
                time = _heappop(times)
                bucket = buckets.get(time)
                if bucket is None:
                    continue  # stale timestamp (bucket compacted/exhausted)
                # Mark the bucket active *before* any user code can run: the
                # stop_when predicate below may cancel events, and a
                # cancellation-triggered compaction must not collect the
                # bucket this loop is holding a live alias to (it would
                # double-decrement the cancel accounting when the alias is
                # drained).
                self._active_time = time
                if time > until_bound:
                    _heappush(times, time)
                    self.now = until
                    break
                # Stop *before* advancing the clock into a bucket no event of
                # which will fire: `now` must remain the last fired time when
                # a stop cell, predicate or event budget ends the run.
                if (
                    fired >= limit
                    or (stop_flag is not None and stop_flag[0])
                    or (stop_when is not None and stop_when())
                ):
                    _heappush(times, time)
                    break
                self.now = time
                index = 0
                stopped = False
                try:
                    if fast:
                        # Single fast-entry bucket: the guard above already proved
                        # the stop cell clear and the budget open, so the one
                        # event fires with no further checks.  Directory-protocol
                        # traffic is mostly unicast (one event per cycle), making
                        # this the common case there.
                        entry = bucket[0]
                        if len(bucket) == 1 and len(entry) != 3:
                            # Consumed before firing: a raising callback must
                            # not leave its own entry queued for re-delivery.
                            index = 1
                            if len(entry) == 5:
                                entry[2](entry[4])
                            else:
                                entry[2]()
                            fired += 1
                            if len(bucket) == 1:
                                del buckets[time]
                                continue
                            if not bucket:
                                # A mid-callback drain() emptied the queue.
                                continue
                            # The callback scheduled into this same cycle: fall
                            # through and drain the rest with full checks.
                        # `length` caches len(bucket); the walrus re-check picks up
                        # entries appended by fired callbacks (same-cycle
                        # scheduling) without a len() call per event.
                        length = len(bucket)
                        while index < length or index < (length := len(bucket)):
                            if stop_flag[0]:
                                stopped = True
                                break
                            try:
                                entry = bucket[index]
                            except IndexError:
                                # A mid-callback drain() emptied the bucket while
                                # `length` was still caching its old size (zero
                                # cost when not raised on 3.11+).
                                break
                            if len(entry) == 3:
                                event = entry[2]
                                if event.cancelled:
                                    event._scheduler = None
                                    self._cancelled -= 1
                                    index += 1
                                    continue
                                if fired >= limit:
                                    stopped = True
                                    break
                                index += 1
                                event._scheduler = None
                                event.callback()
                                fired += 1
                            else:
                                if fired >= limit:
                                    stopped = True
                                    break
                                index += 1
                                if len(entry) == 5:
                                    entry[2](entry[4])
                                else:
                                    entry[2]()
                                fired += 1
                    else:
                        length = len(bucket)
                        while index < length or index < (length := len(bucket)):
                            if stop_flag is not None and stop_flag[0]:
                                stopped = True
                                break
                            try:
                                entry = bucket[index]
                            except IndexError:
                                break  # mid-callback drain(); see the fast loop
                            size = len(entry)
                            if size == 3:
                                event = entry[2]
                                if event.cancelled:
                                    event._scheduler = None
                                    self._cancelled -= 1
                                    index += 1
                                    continue
                            if fired >= limit or (
                                stop_when is not None and stop_when()
                            ):
                                stopped = True
                                break
                            index += 1
                            if size == 3:
                                event = entry[2]
                                event._scheduler = None
                                event.callback()
                                fired += 1
                                if on_fire is not None:
                                    on_fire(time, event.label)
                            else:
                                if size == 5:
                                    entry[2](entry[4])
                                else:
                                    entry[2]()
                                fired += 1
                                if on_fire is not None:
                                    on_fire(time, entry[3])
                except BaseException:
                    # The old heap loop popped each entry before firing,
                    # so a raising callback was exception-safe by
                    # construction.  Restore that here: drop the consumed
                    # prefix (the raising event included) and put the
                    # bucket's timestamp back so the remaining same-cycle
                    # events stay reachable by a later run().
                    if index:
                        del bucket[:index]
                    if buckets.get(time) is bucket:
                        if bucket:
                            _heappush(times, time)
                        else:
                            del buckets[time]
                    raise
                if stopped:
                    if index:
                        del bucket[:index]
                    if bucket:
                        _heappush(times, time)
                    elif buckets.get(time) is bucket:
                        del buckets[time]
                    break
                if buckets.get(time) is bucket:
                    # Identity-guarded: a mid-callback drain() already removed
                    # (or drain + reschedule replaced) this bucket.
                    del buckets[time]
        finally:
            self._fired = fired
            self._active_time = None
        return fired - fired_before

    def drain(self) -> None:
        """Discard all pending events without running them."""
        for bucket in self._buckets.values():
            for entry in bucket:
                if len(entry) == 3 and isinstance(entry[2], Event):
                    entry[2]._scheduler = None
            # Each bucket list is cleared in place as well as the dict: a
            # drain issued from *inside* a fired callback (Simulator.finish
            # mid-run) must stop the loop, which is still indexing into the
            # active bucket's list.
            bucket.clear()
        # In place: compiled network closures hold direct references to both
        # containers, and they must observe the emptied queue.
        self._buckets.clear()
        self._times.clear()
        self._cancelled = 0
        self._compact_watermark = _COMPACT_MIN_CANCELLED

    def reset(self) -> None:
        """Re-arm the scheduler for a fresh run: empty queue, time zero.

        The bucket containers are cleared *in place* (via :meth:`drain`) —
        compiled network closures hold direct aliases to them, and those
        closures survive a system reset.  ``on_fire`` and ``arena`` are
        deliberately preserved: both are installed by the harness around the
        scheduler, not by the run.
        """
        self.drain()
        self.now = 0
        self._sequence = 0
        self._fired = 0


# --------------------------------------------------------- compiled backend
#
# The compiled backend (repro._core._cext) implements only the scheduler's
# hot methods in C, against the *same* observable data layout (`_buckets`
# dict of tuple-entry lists, `_times` heap, integer counters).  Everything
# cold — drain/reset/step/compaction/fire hooks — is the pure implementation
# above, reused verbatim as class attributes of a thin Python subclass.  The
# pure class therefore stays the executable specification: any behavioural
# divergence between backends is a bug in the extension.


def _build_compiled_scheduler() -> type:
    """Create the compiled Scheduler class (imports the extension).

    Called lazily by :mod:`repro._core` so that ``REPRO_BACKEND=pure``
    never imports the extension at all; raises ImportError when the
    extension is not built.
    """
    _cext = _core.load_extension()
    _cext._init_classes(Event, SimulationError)

    class CompiledScheduler(_cext.SchedulerBase):
        """Bucket-queue scheduler with the hot methods compiled to C.

        Drop-in replacement for :class:`Scheduler`: identical event
        ordering, identical error messages, identical container layout —
        the network fast paths that push entries straight into
        ``_buckets``/``_times`` work unchanged against it.
        """

        __slots__ = ()

        # Cold paths shared with the pure implementation (plain functions
        # and property descriptors work across classes via attribute access;
        # every attribute they touch exists on the C base as a member).
        pending = Scheduler.pending
        fired = Scheduler.fired
        add_fire_hook = Scheduler.add_fire_hook
        remove_fire_hook = Scheduler.remove_fire_hook
        _sync_external_assignment = Scheduler._sync_external_assignment
        _rebind_fire_hooks = Scheduler._rebind_fire_hooks
        _compact = Scheduler._compact
        step = Scheduler.step
        drain = Scheduler.drain
        reset = Scheduler.reset

    return CompiledScheduler


_core.provide(pure=Scheduler, compiled_factory=_build_compiled_scheduler)


def active_scheduler_class() -> type:
    """The Scheduler class of the active backend (see :mod:`repro._core`)."""
    return _core.scheduler_class()
