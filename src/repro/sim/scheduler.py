"""The event queue at the heart of the discrete-event simulator."""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from .event import Event


class Scheduler:
    """A time-ordered priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._now = 0
        self._sequence = 0
        self._fired = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    def schedule_at(
        self, time: int, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute cycle ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before current "
                f"time {self._now}"
            )
        event = Event(time=time, sequence=self._sequence, callback=callback, label=label)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self, delay: int, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, label)

    def step(self) -> Optional[Event]:
        """Pop and fire the next non-cancelled event; return it (or None)."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fire()
            self._fired += 1
            return event
        return None

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run events until the queue drains or a stop condition is met.

        Returns the number of events fired by this call.
        """
        fired_before = self._fired
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self._now = until
                break
            if max_events is not None and self._fired - fired_before >= max_events:
                break
            if stop_when is not None and stop_when():
                break
            self.step()
        return self._fired - fired_before

    def drain(self) -> None:
        """Discard all pending events without running them."""
        self._queue.clear()
