"""Build hooks for the optional compiled event core.

The package is pure Python plus ONE optional C extension,
``repro._core._cext`` (see ``src/repro/_core/__init__.py`` for the backend
contract).  The extension is a strictly best-effort build: on a machine
without a C compiler or Python headers, ``pip install -e .`` must still
succeed and the package must import and run — the backend selector falls
back to the pure-Python event core.  A failed extension build therefore
prints a notice and continues instead of failing the install.

Set ``REPRO_REQUIRE_CEXT=1`` to turn a failed extension build into a hard
error (CI's compiled job does), or ``REPRO_SKIP_CEXT=1`` to not attempt it
at all.  The extension can always be (re)built later, in place, with::

    python -m repro._core.build
"""

import os

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Build the extension if we can; fall back to pure Python if we can't."""

    def run(self):
        try:
            super().run()
        except Exception as error:  # noqa: BLE001 - any toolchain failure
            self._handle(error)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as error:  # noqa: BLE001 - any toolchain failure
            self._handle(error)

    @staticmethod
    def _handle(error):
        if os.environ.get("REPRO_REQUIRE_CEXT"):
            raise
        print(
            "warning: could not build the optional compiled event core "
            f"({error!r}); installing with the pure-Python backend. "
            "Build it later with: python -m repro._core.build"
        )


ext_modules = []
cmdclass = {}
if not os.environ.get("REPRO_SKIP_CEXT"):
    ext_modules = [
        Extension(
            "repro._core._cext",
            sources=[
                "src/repro/_core/_cext.c",
                "src/repro/_core/_chandlers.c",
            ],
            depends=["src/repro/_core/_core.h"],
            optional=not os.environ.get("REPRO_REQUIRE_CEXT"),
        )
    ]
    cmdclass = {"build_ext": OptionalBuildExt}

setup(ext_modules=ext_modules, cmdclass=cmdclass)
