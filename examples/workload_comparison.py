#!/usr/bin/env python3
"""Figure 10-12 style comparison, written as a *custom scenario*.

Earlier revisions of this example hand-rolled the comparison loop: build a
``SystemConfig`` per (workload, protocol), call ``simulate``, normalise by
hand.  The scenario engine makes that loop declarative — define the axes,
point the grid at a workload factory, and run it through the same batched,
cached, parallel executor the paper figures use.  The engine hands back a
:class:`~repro.experiments.study.ResultFrame` whose derived-metric helpers
replace the manual normalisation.

The same study is available without writing Python at all::

    python -m repro run figure12 --scale quick

Usage::

    python examples/workload_comparison.py
    python examples/workload_comparison.py --bandwidth 1600 --broadcast-cost 4
    python examples/workload_comparison.py --workers 4 --cache-dir /tmp/sweeps
"""

from __future__ import annotations

import argparse

from repro.common.config import ProtocolName
from repro.experiments.report import format_bars
from repro.experiments.runner import QUICK, synthetic_factory
from repro.experiments.scenario import GridScenario, register, run_scenario
from repro.experiments.study import Axis
from repro.workloads.presets import WORKLOAD_ORDER, preset


def build_scenario(args) -> GridScenario:
    """Declare the comparison as a scenario and register it by name."""
    return register(
        GridScenario(
            name="example_workload_comparison",
            title="Synthetic commercial workloads, normalised to BASH",
            description=(
                "The Figure 12 comparison as a user-defined scenario: "
                "workload x protocol at one bandwidth point."
            ),
            axes=(
                Axis("workload", values=tuple(WORKLOAD_ORDER)),
                Axis("protocol", values=(
                    ProtocolName.BASH, ProtocolName.SNOOPING, ProtocolName.DIRECTORY,
                )),
            ),
            workload=lambda scale, coords: synthetic_factory(
                scale, coords["workload"]
            ),
            fixed={
                "bandwidth": args.bandwidth,
                "broadcast_cost_factor": args.broadcast_cost,
                "num_processors": args.processors,
                "cache_capacity_blocks": 4096,
            },
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bandwidth", type=float, default=1600.0, help="endpoint MB/s")
    parser.add_argument("--broadcast-cost", type=float, default=4.0,
                        help="relative bandwidth cost of a broadcast (paper uses 4 in Fig. 11/12)")
    parser.add_argument("--processors", type=int, default=16)
    parser.add_argument("--workers", type=int, default=None,
                        help="fan sweep points across N processes")
    parser.add_argument("--cache-dir", default=None,
                        help="memoise completed points on disk")
    args = parser.parse_args()

    scenario = build_scenario(args)
    result = run_scenario(
        scenario.name, scale=QUICK, workers=args.workers, cache_dir=args.cache_dir
    )

    # The unified frame replaces the hand-rolled normalisation loop: one
    # derived column of performance vs the BASH baseline, per workload.
    speedups = result.frame.speedup()
    bars = {
        preset(name).name: {
            str(row["protocol"]): row["speedup"]
            for row in speedups.filter(workload=name).rows()
        }
        for name in speedups.unique("workload")
    }
    print(
        f"Synthetic commercial workloads: {args.processors} processors, "
        f"{args.bandwidth:.0f} MB/s, {args.broadcast_cost:.0f}x broadcast cost\n"
    )
    print(format_bars("Normalised to BASH (1.000); higher is better", bars))
    print("\nAs in Figure 12, BASH should match or exceed the better static "
          "protocol on every workload.")


if __name__ == "__main__":
    main()
