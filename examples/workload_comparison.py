#!/usr/bin/env python3
"""Figure 10-12 style comparison on the synthetic commercial workloads.

Runs the five synthetic workload presets (OLTP, Apache, SPECjbb, Slashcode,
Barnes-Hut) on a 16-processor system at a chosen bandwidth — optionally with
the paper's 4x broadcast-cost proxy for larger machines — and prints each
protocol's performance normalised to BASH, the format of Figure 12.

Usage::

    python examples/workload_comparison.py
    python examples/workload_comparison.py --bandwidth 1600 --broadcast-cost 4
"""

from __future__ import annotations

import argparse

from repro.common.config import AdaptiveConfig, ProtocolName, SystemConfig
from repro.system.multiprocessor import simulate
from repro.workloads.presets import WORKLOAD_ORDER, preset
from repro.workloads.synthetic import SyntheticCommercialWorkload

PROTOCOLS = (ProtocolName.BASH, ProtocolName.SNOOPING, ProtocolName.DIRECTORY)


def run_workload(name: str, protocol: ProtocolName, args) -> float:
    config = SystemConfig(
        num_processors=args.processors,
        protocol=protocol,
        bandwidth_mb_per_second=args.bandwidth,
        broadcast_cost_factor=args.broadcast_cost,
        adaptive=AdaptiveConfig(sampling_interval=128, policy_counter_bits=6),
        cache_capacity_blocks=4096,
        random_seed=args.seed,
    )
    workload = SyntheticCommercialWorkload(name, operations_per_processor=args.operations)
    return simulate(config, workload).performance


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bandwidth", type=float, default=1600.0, help="endpoint MB/s")
    parser.add_argument("--broadcast-cost", type=float, default=4.0,
                        help="relative bandwidth cost of a broadcast (paper uses 4 in Fig. 11/12)")
    parser.add_argument("--processors", type=int, default=16)
    parser.add_argument("--operations", type=int, default=120, help="misses per processor")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    print(
        f"Synthetic commercial workloads: {args.processors} processors, "
        f"{args.bandwidth:.0f} MB/s, {args.broadcast_cost:.0f}x broadcast cost\n"
    )
    print(f"{'workload':>12} {'description':<40} "
          + "".join(f"{str(p):>11}" for p in PROTOCOLS))
    for name in WORKLOAD_ORDER:
        performances = {p: run_workload(name, p, args) for p in PROTOCOLS}
        bash = performances[ProtocolName.BASH] or 1.0
        description = preset(name).description.split(":")[0]
        row = "".join(f"{performances[p] / bash:>11.2f}" for p in PROTOCOLS)
        print(f"{preset(name).name:>12} {description:<40}{row}")
    print("\nValues are normalised to BASH (1.00); higher is better.")
    print("As in Figure 12, BASH should match or exceed the better static "
          "protocol on every workload.")


if __name__ == "__main__":
    main()
