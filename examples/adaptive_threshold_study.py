#!/usr/bin/env python3
"""Figure 3 / 7 style study of the bandwidth adaptive mechanism itself.

Part 1 replays the paper's Figure 3 utilization-counter example and then shows
the policy counter converging under sustained high and low utilization.
Part 2 sweeps the utilization threshold (55% / 75% / 95%) across two bandwidth
points, reproducing the insensitivity result of Figure 7.
"""

from __future__ import annotations

from repro.common.config import AdaptiveConfig
from repro.experiments import QUICK, figure7_threshold_sensitivity
from repro.protocols.bash.adaptive import (
    BandwidthAdaptiveMechanism,
    utilization_counter_trace,
)


def counter_walkthrough() -> None:
    print("Figure 3: utilization counter walk-through (75% target)")
    pattern = [False, True, True, False, True, False, True]
    values = utilization_counter_trace(pattern)
    for busy, value in zip(pattern, values):
        print(f"  cycle {'busy' if busy else 'idle'}  -> counter {value:+d}")
    print(f"  final value {values[-1]:+d} (the paper's example ends at -5)\n")


def policy_convergence() -> None:
    print("Policy counter convergence (8-bit counter, 512-cycle intervals)")
    mechanism = BandwidthAdaptiveMechanism(AdaptiveConfig())
    for label, utilization, intervals in (
        ("sustained 95% utilization", 0.95, 300),
        ("sustained 10% utilization", 0.10, 300),
    ):
        for _ in range(intervals):
            mechanism.observe_interval(utilization)
        print(
            f"  after {intervals} intervals of {label}: "
            f"unicast probability {mechanism.unicast_probability:.2f}"
        )
    print()


def threshold_sweep() -> None:
    print("Figure 7: sensitivity to the utilization threshold")
    sweeps = figure7_threshold_sensitivity(
        QUICK, thresholds=(0.55, 0.75, 0.95), bandwidths=(400, 3200)
    )
    print(f"{'threshold':>10} {'400 MB/s':>12} {'3200 MB/s':>12}")
    for threshold, points in sweeps.items():
        row = "".join(f"{p.performance:>12.4f}" for p in points)
        print(f"{threshold:>10.0%}{row}")
    print("\nAs in the paper, BASH's performance is not overly sensitive to the "
          "exact threshold value.")


def main() -> None:
    counter_walkthrough()
    policy_convergence()
    threshold_sweep()


if __name__ == "__main__":
    main()
