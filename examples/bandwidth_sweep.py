#!/usr/bin/env python3
"""Figure 1 / 5 / 6 style bandwidth sweep for the locking microbenchmark.

Sweeps the endpoint link bandwidth, runs all three protocols at each point and
prints performance (absolute and normalised to BASH) plus endpoint link
utilization — the data behind Figures 1, 5 and 6 of the paper.

Usage::

    python examples/bandwidth_sweep.py            # quick sweep (16 processors)
    python examples/bandwidth_sweep.py --paper    # paper-scale sweep (64 processors; slow)
"""

from __future__ import annotations

import argparse

from repro.common.config import ProtocolName
from repro.experiments import (
    PAPER,
    QUICK,
    crossover_summary,
    figure1_microbenchmark_performance,
    figure5_normalized_performance,
    figure6_link_utilization,
    format_curves,
    format_normalized,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the paper-scale configuration (64 processors, long runs)",
    )
    args = parser.parse_args()
    scale = PAPER if args.paper else QUICK

    print(f"Running the {scale.name} bandwidth sweep "
          f"({scale.microbenchmark_processors} processors)...\n")
    curves = figure1_microbenchmark_performance(scale)
    xs = [point.x for point in curves[ProtocolName.BASH]]

    print(format_curves("Figure 1: performance vs available bandwidth (MB/s)", curves))
    print()
    print(
        format_normalized(
            "Figure 5: performance normalised to BASH",
            figure5_normalized_performance(curves),
            xs,
        )
    )
    print()
    print("Figure 6: endpoint link utilization")
    utilization = figure6_link_utilization(curves)
    for protocol, points in utilization.items():
        row = "  ".join(f"{p['bandwidth']:>6.0f}:{p['utilization']:.2f}" for p in points)
        print(f"  {str(protocol):>10} {row}")
    print()
    summary = crossover_summary(curves)
    print("Summary:")
    print(f"  Snooping first matches Directory at "
          f"{summary['snooping_beats_directory_at']:.0f} MB/s")
    print(f"  BASH worst case vs best static protocol: "
          f"{summary['bash_worst_ratio_vs_best_static']:.2f}x")
    print(f"  BASH best gain over best static protocol: "
          f"{summary['bash_best_gain_over_best_static']:+.1%}")


if __name__ == "__main__":
    main()
