#!/usr/bin/env python3
"""Quickstart: simulate one machine under all three coherence protocols.

Builds a 16-processor system with 1600 MB/s endpoint links, runs the paper's
locking microbenchmark under Snooping, Directory and BASH, and prints the
throughput, miss latency, link utilization and broadcast fraction of each.

Running the figures fast
------------------------

Every figure driver in :mod:`repro.experiments.figures` is a sweep of
independent simulations, and every sweep accepts ``workers`` and
``cache_dir``::

    from repro.experiments.figures import figure1_microbenchmark_performance
    from repro.experiments.runner import QUICK, PAPER

    # Fan the 21 sweep points across 8 worker processes.
    curves = figure1_microbenchmark_performance(QUICK, workers=8)

    # Memoise completed points on disk: re-running a figure (or resuming an
    # interrupted PAPER-scale reproduction) skips everything already done.
    curves = figure1_microbenchmark_performance(
        PAPER, workers=8, cache_dir="~/.cache/repro-sweeps"
    )

``workers=0`` means "auto" ($REPRO_SWEEP_WORKERS, else the CPU count); the
default (``None``) stays serial.  Parallel and serial runs are guaranteed to
produce identical results point for point, because every point derives its
seeds from its own configuration (``scale.seeds``), never from worker
scheduling.  The cache key hashes the full point configuration (scale,
protocol, bandwidth, workload, adaptive parameters), so a changed experiment
never reuses stale results; completed points are written atomically (temp
file + rename), so an interrupted run never leaves a corrupt cache entry.

Sweeps are *batched* by default: points sharing a (protocol, processor
count) run on one constructed system that is ``reset()`` between points —
with pooled hot objects and the cyclic GC parked — instead of rebuilding
nodes, dispatch tables and networks per point.  A reset system is
contractually identical to a fresh one (bit-identical event traces), and
``run_sweep(..., batch=False)`` forces the rebuild-per-point path if you want
to verify that on your own configuration.

Running the figures without Python: the scenario engine
-------------------------------------------------------

Every figure (and several non-paper studies) is registered as a named,
declarative scenario; the ``repro`` package is executable and drives them
from the command line::

    python -m repro list
    python -m repro run figure1 --scale quick
    python -m repro run figure10 --scale paper --workers 8 \\
        --cache-dir ~/.cache/repro-sweeps      # resumable PAPER campaign
    python -m repro run migratory --axis bandwidth=800,3200 --json out.json

Programmatically, a scenario is a grid of axes crossed into ``PointSpec``\\ s
and collected into a unified :class:`~repro.experiments.study.ResultFrame`::

    from repro.experiments import SCENARIOS

    frame = SCENARIOS["figure1"].grid("quick").run(workers=8)
    print(frame.speedup().filter(protocol="directory").column("speedup"))

See ``examples/workload_comparison.py`` for declaring and registering a
custom scenario of your own.
"""

from __future__ import annotations

from repro import (
    AdaptiveConfig,
    LockingMicrobenchmark,
    ProtocolName,
    SystemConfig,
    simulate,
)


def main() -> None:
    print("Bandwidth Adaptive Snooping reproduction - quickstart")
    print("16 processors, 1600 MB/s endpoint links, locking microbenchmark\n")
    header = (
        f"{'protocol':>10} {'acquires/us':>12} {'miss latency':>13} "
        f"{'link util':>10} {'broadcasts':>11} {'retries':>8}"
    )
    print(header)
    for protocol in (ProtocolName.SNOOPING, ProtocolName.DIRECTORY, ProtocolName.BASH):
        config = SystemConfig(
            num_processors=16,
            protocol=protocol,
            bandwidth_mb_per_second=1600,
            # A faster-reacting adaptive mechanism than the paper's default so
            # BASH reaches its operating point within this short run.
            adaptive=AdaptiveConfig(sampling_interval=128, policy_counter_bits=6),
            random_seed=42,
        )
        workload = LockingMicrobenchmark(num_locks=1024, acquires_per_processor=100)
        result = simulate(config, workload)
        print(
            f"{str(protocol):>10} {result.performance * 1000:>12.2f} "
            f"{result.mean_miss_latency:>10.0f} ns {result.mean_link_utilization:>10.2f} "
            f"{result.broadcast_fraction:>10.0%} {result.retries:>8}"
        )
    print(
        "\nSnooping broadcasts everything, Directory unicasts everything, and "
        "BASH mixes the two based on its local estimate of link utilization."
    )


if __name__ == "__main__":
    main()
