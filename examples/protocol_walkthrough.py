#!/usr/bin/env python3
"""Figure 4 walk-through: how each protocol completes two basic transactions.

Reproduces the two transactions of Figure 4 — a memory-to-cache transfer and a
cache-to-cache transfer with an invalidation — under Snooping, Directory and
BASH, and reports the requester's latency and the number of messages used.
The uncontended latencies should match Section 4.2: ~180 ns from memory,
~125 ns cache-to-cache for Snooping/broadcast BASH, ~255 ns cache-to-cache for
Directory (and for a BASH unicast that needs one retry).
"""

from __future__ import annotations

from repro.experiments import figure4_transaction_walkthrough


def main() -> None:
    print("Figure 4: transaction walk-throughs (4 processors, uncontended)\n")
    walkthrough = figure4_transaction_walkthrough()
    print(f"{'scenario':<34} {'latency (ns)':>13} {'ordered msgs':>13} {'unordered msgs':>15}")
    for name, metrics in walkthrough.items():
        print(
            f"{name:<34} {metrics['requester_miss_latency']:>13.0f} "
            f"{metrics['ordered_messages']:>13.0f} {metrics['unordered_messages']:>15.0f}"
        )
    print(
        "\nSnooping and (broadcast) BASH avoid the directory indirection on the "
        "cache-to-cache transfer, which is exactly the latency advantage the "
        "adaptive mechanism tries to keep whenever bandwidth allows."
    )


if __name__ == "__main__":
    main()
