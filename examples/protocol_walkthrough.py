#!/usr/bin/env python3
"""Figure 4 walk-through: how each protocol completes two basic transactions.

Reproduces the two transactions of Figure 4 — a memory-to-cache transfer and a
cache-to-cache transfer with an invalidation — under Snooping, Directory and
BASH, and reports the requester's latency and the number of messages used.
The uncontended latencies should match Section 4.2: ~180 ns from memory,
~125 ns cache-to-cache for Snooping/broadcast BASH, ~255 ns cache-to-cache for
Directory (and for a BASH unicast that needs one retry).
"""

from __future__ import annotations

from repro.common.config import ProtocolName, SystemConfig
from repro.experiments import figure4_transaction_walkthrough
from repro.interconnect.message import MessageType
from repro.system.multiprocessor import MultiprocessorSystem
from repro.workloads.trace import TraceWorkload


def show_dispatch_tables() -> None:
    """Introspect each protocol's compiled message-dispatch tables.

    Every controller declares ``(message type -> handler)`` tables that are
    compiled to bound methods at construction; the networks index them
    directly (see ``repro.protocols.dispatch``).  Printing them is the
    quickest way to see how the three protocols divide the message space —
    any type missing from a row is *explicitly rejected* by that controller.
    """
    print("Compiled dispatch tables (message type -> handler method)\n")
    for protocol in (ProtocolName.SNOOPING, ProtocolName.DIRECTORY, ProtocolName.BASH):
        config = SystemConfig(num_processors=4, protocol=protocol)
        system = MultiprocessorSystem(config, TraceWorkload({n: [] for n in range(4)}))
        node = system.nodes[0]
        print(f"  {protocol}:")
        for controller, tables in (
            (node.cache_controller, ("ordered_handlers", "unordered_handlers")),
            (node.memory_controller, ("ordered_handlers", "unordered_handlers")),
        ):
            for table_name in tables:
                table = getattr(controller, table_name)
                network = table_name.split("_")[0]
                if not table:
                    print(f"    {controller.name:<9} {network:<9} (consumes nothing)")
                    continue
                entries = ", ".join(
                    f"{msg_type}->{handler.__name__}"
                    for msg_type, handler in sorted(
                        table.items(), key=lambda item: item[0].value
                    )
                )
                print(f"    {controller.name:<9} {network:<9} {entries}")
        rejected = [
            str(t) for t in MessageType
            if t not in node.cache_controller.ordered_handlers
            and t not in node.cache_controller.unordered_handlers
            and t not in node.memory_controller.ordered_handlers
            and t not in node.memory_controller.unordered_handlers
        ]
        if rejected:
            print(f"    rejected everywhere: {', '.join(sorted(rejected))}")
        print()


def main() -> None:
    show_dispatch_tables()
    print("Figure 4: transaction walk-throughs (4 processors, uncontended)\n")
    walkthrough = figure4_transaction_walkthrough()
    print(f"{'scenario':<34} {'latency (ns)':>13} {'ordered msgs':>13} {'unordered msgs':>15}")
    for name, metrics in walkthrough.items():
        print(
            f"{name:<34} {metrics['requester_miss_latency']:>13.0f} "
            f"{metrics['ordered_messages']:>13.0f} {metrics['unordered_messages']:>15.0f}"
        )
    print(
        "\nSnooping and (broadcast) BASH avoid the directory indirection on the "
        "cache-to-cache transfer, which is exactly the latency advantage the "
        "adaptive mechanism tries to keep whenever bandwidth allows."
    )


if __name__ == "__main__":
    main()
