"""Behaviour of the BASH hybrid protocol: dualcasts, sufficiency, retries, nacks."""

import pytest

from repro.coherence.state import MOSIState
from repro.common.config import AdaptiveConfig, ProtocolName, SystemConfig
from repro.interconnect.message import MessageType
from repro.system.multiprocessor import MultiprocessorSystem
from repro.workloads.base import MemoryOperation
from repro.workloads.trace import TraceWorkload

from ..conftest import build_trace_system


def bash_system(operations, always_unicast=False, num_processors=4, bandwidth=100_000.0, **kwargs):
    """A BASH system, optionally pinned to always-unicast decisions."""
    system = build_trace_system(
        ProtocolName.BASH, operations, num_processors, bandwidth, **kwargs
    )
    if always_unicast:
        for node in system.nodes:
            # Pin the decision itself: resetting the policy counter is not
            # enough because low-utilization samples would drift it back
            # toward broadcasting during the think time.
            node.cache_controller.adaptive.should_broadcast = lambda: False
    return system


class TestBroadcastPath:
    def test_default_policy_broadcasts_and_behaves_like_snooping(self):
        ops = {
            0: [MemoryOperation(address=0, is_write=True)],
            1: [MemoryOperation(address=0, is_write=False, think_cycles=1500)],
            2: [],
            3: [],
        }
        system = bash_system(ops)
        system.run(max_cycles=2_000_000)
        assert system.nodes[0].cache_controller.state_of(0) is MOSIState.OWNED
        assert system.nodes[1].cache_controller.state_of(0) is MOSIState.SHARED
        assert system.broadcast_fraction() > 0.5

    def test_broadcast_updates_directory_state(self):
        ops = {0: [MemoryOperation(address=0, is_write=True)], 1: [], 2: [], 3: []}
        system = bash_system(ops)
        system.run(max_cycles=2_000_000)
        home = system.config.home_node(0)
        entry = system.nodes[home].memory_controller.directory.lookup(0)
        assert entry.owner == 0


class TestUnicastPath:
    def test_unicast_to_memory_owned_block_needs_no_retry(self):
        ops = {0: [MemoryOperation(address=0, is_write=True)], 1: [], 2: [], 3: []}
        system = bash_system(ops, always_unicast=True)
        system.run(max_cycles=2_000_000)
        assert system.nodes[0].cache_controller.state_of(0) is MOSIState.MODIFIED
        assert system.stats.counters().get("system.retries", 0) == 0

    def test_unicast_to_cache_owned_block_is_retried(self):
        # Block 192 is homed at node 3, so P1's dualcast {home, P1} cannot
        # reach the owner P0 and the memory controller must retry it.
        ops = {
            0: [MemoryOperation(address=192, is_write=True)],
            1: [MemoryOperation(address=192, is_write=True, think_cycles=2500)],
            2: [],
            3: [],
        }
        system = bash_system(ops, always_unicast=True)
        system.run(max_cycles=2_000_000)
        assert system.nodes[1].cache_controller.state_of(192) is MOSIState.MODIFIED
        assert system.nodes[0].cache_controller.state_of(192) is MOSIState.INVALID
        assert system.stats.counters().get("system.retries", 0) >= 1

    def test_unicast_sufficient_when_home_is_the_owner(self):
        # Block 0 is homed at node 0; when node 0 also owns it, a dualcast
        # from P1 does reach the owner, so no retry is needed.
        ops = {
            0: [MemoryOperation(address=0, is_write=True)],
            1: [MemoryOperation(address=0, is_write=True, think_cycles=2500)],
            2: [],
            3: [],
        }
        system = bash_system(ops, always_unicast=True)
        system.run(max_cycles=2_000_000)
        assert system.nodes[1].cache_controller.state_of(0) is MOSIState.MODIFIED
        assert system.stats.counters().get("system.retries", 0) == 0

    def test_unicast_sharing_read_is_indirected_like_directory(self):
        ops = {
            0: [MemoryOperation(address=192, is_write=True)],
            1: [MemoryOperation(address=192, is_write=False, think_cycles=2500)],
            2: [],
            3: [],
        }
        system = bash_system(ops, always_unicast=True)
        system.run(max_cycles=2_000_000)
        assert system.nodes[0].cache_controller.state_of(192) is MOSIState.OWNED
        assert system.nodes[1].cache_controller.state_of(192) is MOSIState.SHARED
        token0 = system.nodes[0].cache_controller.blocks.lookup(192).data_token
        token1 = system.nodes[1].cache_controller.blocks.lookup(192).data_token
        assert token0 == token1

    def test_unicast_invalidation_of_sharers_via_retry(self):
        # P0 and P1 read (shared), then P2 unicasts a GETM: the dualcast cannot
        # reach the sharers, so the memory controller must retry with them.
        ops = {
            0: [MemoryOperation(address=192, is_write=False)],
            1: [MemoryOperation(address=192, is_write=False)],
            2: [MemoryOperation(address=192, is_write=True, think_cycles=2500)],
            3: [],
        }
        system = bash_system(ops, always_unicast=True)
        system.run(max_cycles=2_000_000)
        assert system.nodes[0].cache_controller.state_of(192) is MOSIState.INVALID
        assert system.nodes[1].cache_controller.state_of(192) is MOSIState.INVALID
        assert system.nodes[2].cache_controller.state_of(192) is MOSIState.MODIFIED

    def test_writebacks_are_always_dualcast(self):
        ops = {0: [MemoryOperation(address=0, is_write=True)], 1: [], 2: [], 3: []}
        system = bash_system(ops)  # broadcast-happy policy
        system.run(max_cycles=1_000_000)
        before = system.stats.counters().get("network.ordered.broadcasts", 0)
        system.nodes[0].cache_controller.issue_writeback(0)
        system.simulator.run(until=system.simulator.now + 100_000)
        after = system.stats.counters().get("network.ordered.broadcasts", 0)
        assert after == before  # the PUT did not broadcast
        home = system.config.home_node(0)
        assert system.nodes[home].memory_controller.directory.lookup(0).memory_is_owner


class TestRetryEscalationAndNacks:
    def test_third_retry_escalates_to_broadcast(self):
        config = SystemConfig(
            num_processors=4,
            protocol=ProtocolName.BASH,
            bandwidth_mb_per_second=100_000.0,
            adaptive=AdaptiveConfig(max_retries_before_broadcast=1),
            random_seed=1,
        )
        ops = {
            0: [MemoryOperation(address=192, is_write=True)],
            1: [MemoryOperation(address=192, is_write=True, think_cycles=2500)],
            2: [],
            3: [],
        }
        system = MultiprocessorSystem(config, TraceWorkload(ops))
        for node in system.nodes:
            node.cache_controller.adaptive.should_broadcast = lambda: False
        system.run(max_cycles=2_000_000)
        counters = system.stats.counters()
        # With the escalation threshold at 1 every retry is a broadcast retry.
        home = system.config.home_node(192)
        assert counters.get(f"memory{home}.retries.broadcast", 0) >= 1
        assert system.nodes[1].cache_controller.state_of(192) is MOSIState.MODIFIED

    def test_full_retry_buffer_nacks_and_requester_rebroadcasts(self):
        config = SystemConfig(
            num_processors=4,
            protocol=ProtocolName.BASH,
            bandwidth_mb_per_second=100_000.0,
            adaptive=AdaptiveConfig(retry_buffer_size=1),
            random_seed=1,
        )
        ops = {node: [] for node in range(4)}
        system = MultiprocessorSystem(config, TraceWorkload(ops))
        for node in system.nodes:
            node.cache_controller.adaptive.should_broadcast = lambda: False
        home = system.config.home_node(0)
        memory = system.nodes[home].memory_controller
        # Artificially exhaust the retry buffer, then drive a unicast that
        # needs an indirection: the memory controller must nack it and the
        # requester must complete by reissuing a broadcast.
        memory._active_retries = config.adaptive.retry_buffer_size
        writer = system.nodes[1].cache_controller
        writer.issue_request(0, MessageType.GETM, store_token=7)
        system.simulator.run(until=50_000)
        memory._active_retries = 0
        reader_done = []
        victim = system.nodes[2].cache_controller
        victim.issue_request(64, MessageType.GETM, store_token=8,
                             callback=lambda txn: reader_done.append(txn))
        system.simulator.run(until=system.simulator.now + 200_000)
        assert writer.state_of(0) is MOSIState.MODIFIED

    def test_nack_counter_increments_when_buffer_exhausted(self):
        config = SystemConfig(
            num_processors=4,
            protocol=ProtocolName.BASH,
            bandwidth_mb_per_second=100_000.0,
            adaptive=AdaptiveConfig(retry_buffer_size=1),
            random_seed=1,
        )
        ops = {
            0: [MemoryOperation(address=192, is_write=True)],
            1: [MemoryOperation(address=192, is_write=True, think_cycles=2500)],
            2: [],
            3: [],
        }
        system = MultiprocessorSystem(config, TraceWorkload(ops))
        for node in system.nodes:
            node.cache_controller.adaptive.should_broadcast = lambda: False
        home = system.config.home_node(192)
        system.nodes[home].memory_controller._active_retries = 1
        system.run(max_cycles=2_000_000)
        # Either the nack path fired, or the retry slot freed naturally; the
        # requester must complete either way.
        assert system.nodes[1].cache_controller.state_of(192) is MOSIState.MODIFIED


class TestAdaptiveIntegration:
    def test_sampling_runs_and_records_statistics(self):
        ops = {node: [] for node in range(4)}
        system = bash_system(ops)
        system.simulator.run(until=2000)
        means = system.stats.means()
        assert "system.link_utilization" in means

    def test_per_node_lfsr_seeds_differ(self):
        ops = {node: [] for node in range(4)}
        system = bash_system(ops)
        seeds = {node.cache_controller.adaptive.lfsr.state for node in system.nodes}
        assert len(seeds) == 4
