"""Behaviour of the GS320-style Directory protocol on directed scenarios."""

from repro.coherence.state import MEMORY_OWNER, MOSIState
from repro.common.config import ProtocolName
from repro.workloads.base import MemoryOperation

from ..conftest import build_trace_system


def run_trace(operations, num_processors=4, bandwidth=100_000.0):
    system = build_trace_system(
        ProtocolName.DIRECTORY, operations, num_processors, bandwidth
    )
    system.run(max_cycles=2_000_000)
    return system


class TestDirectoryBasics:
    def test_memory_response_for_cold_store(self):
        system = run_trace({0: [MemoryOperation(address=0, is_write=True)], 1: [], 2: [], 3: []})
        assert system.nodes[0].cache_controller.state_of(0) is MOSIState.MODIFIED
        home = system.config.home_node(0)
        entry = system.nodes[home].memory_controller.directory.lookup(0)
        assert entry.owner == 0

    def test_directory_tracks_sharers(self):
        system = run_trace(
            {
                0: [MemoryOperation(address=0, is_write=False)],
                1: [MemoryOperation(address=0, is_write=False)],
                2: [],
                3: [],
            }
        )
        home = system.config.home_node(0)
        entry = system.nodes[home].memory_controller.directory.lookup(0)
        assert {0, 1}.issubset(entry.sharers)
        assert entry.memory_is_owner

    def test_forwarded_getm_invalidates_sharers(self):
        system = run_trace(
            {
                0: [MemoryOperation(address=0, is_write=False)],
                1: [MemoryOperation(address=0, is_write=False)],
                2: [MemoryOperation(address=0, is_write=True, think_cycles=2500)],
                3: [],
            }
        )
        assert system.nodes[0].cache_controller.state_of(0) is MOSIState.INVALID
        assert system.nodes[1].cache_controller.state_of(0) is MOSIState.INVALID
        assert system.nodes[2].cache_controller.state_of(0) is MOSIState.MODIFIED
        home = system.config.home_node(0)
        entry = system.nodes[home].memory_controller.directory.lookup(0)
        assert entry.owner == 2
        assert not entry.sharers

    def test_forwarded_gets_served_by_owner(self):
        system = run_trace(
            {
                0: [MemoryOperation(address=0, is_write=True)],
                1: [MemoryOperation(address=0, is_write=False, think_cycles=2500)],
                2: [],
                3: [],
            }
        )
        assert system.nodes[0].cache_controller.state_of(0) is MOSIState.OWNED
        assert system.nodes[1].cache_controller.state_of(0) is MOSIState.SHARED
        # The directory still records the original writer as the owner.
        home = system.config.home_node(0)
        entry = system.nodes[home].memory_controller.directory.lookup(0)
        assert entry.owner == 0
        assert 1 in entry.sharers

    def test_tokens_propagate_through_forwarding(self):
        system = run_trace(
            {
                0: [MemoryOperation(address=0, is_write=True)],
                1: [MemoryOperation(address=0, is_write=False, think_cycles=2500)],
                2: [],
                3: [],
            }
        )
        writer_token = system.nodes[0].cache_controller.blocks.lookup(0).data_token
        reader_token = system.nodes[1].cache_controller.blocks.lookup(0).data_token
        assert writer_token == reader_token != 0


class TestDirectoryWritebacks:
    def test_accepted_writeback_returns_ownership_to_memory(self):
        system = build_trace_system(
            ProtocolName.DIRECTORY, {0: [MemoryOperation(address=0, is_write=True)], 1: [], 2: [], 3: []}
        )
        system.run(max_cycles=1_000_000)
        cache0 = system.nodes[0].cache_controller
        done = []
        cache0.issue_writeback(0, callback=lambda txn: done.append(txn))
        system.simulator.run(until=system.simulator.now + 100_000)
        assert done
        assert cache0.state_of(0) is MOSIState.INVALID
        home = system.config.home_node(0)
        entry = system.nodes[home].memory_controller.directory.lookup(0)
        assert entry.owner == MEMORY_OWNER
        assert entry.data_token != 0

    def test_stale_writeback_is_rejected_after_ownership_moved(self):
        # P0 owns the block, P1 takes it over, and P0's writeback (issued in
        # the window before P0 observes the forwarded GETM) must be nacked.
        system = build_trace_system(
            ProtocolName.DIRECTORY,
            {
                0: [MemoryOperation(address=0, is_write=True)],
                1: [MemoryOperation(address=0, is_write=True, think_cycles=1200)],
                2: [],
                3: [],
            },
            bandwidth=800.0,
        )
        system.run(max_cycles=1100)
        cache0 = system.nodes[0].cache_controller
        if cache0.state_of(0).is_owner:
            cache0.issue_writeback(0)
        system.simulator.run(until=2_000_000)
        home = system.config.home_node(0)
        entry = system.nodes[home].memory_controller.directory.lookup(0)
        # P1 must end up the owner; P0's data must not have overwritten it.
        assert entry.owner == 1
        assert system.nodes[1].cache_controller.state_of(0) is MOSIState.MODIFIED
