"""The bandwidth adaptive mechanism (Section 2.2, Figure 3)."""

import pytest

from repro.common.config import AdaptiveConfig
from repro.errors import ConfigurationError
from repro.protocols.bash.adaptive import (
    BandwidthAdaptiveMechanism,
    utilization_counter_trace,
)


class TestUtilizationCounter:
    def test_figure3_example_ends_at_minus_five(self):
        # Link used 4 of the previous 7 cycles (57%) with a 75% target:
        # 4 * (+1) + 3 * (-3) = -5.
        pattern = [False, True, True, False, True, False, True]
        values = utilization_counter_trace(pattern)
        assert values[-1] == -5

    def test_counter_positive_above_threshold(self):
        mechanism = BandwidthAdaptiveMechanism(AdaptiveConfig())
        # 90% utilization over a 512-cycle interval.
        value = mechanism.observe_cycles(busy_cycles=461, idle_cycles=51)
        assert value > 0

    def test_counter_negative_below_threshold(self):
        mechanism = BandwidthAdaptiveMechanism(AdaptiveConfig())
        value = mechanism.observe_cycles(busy_cycles=256, idle_cycles=256)
        assert value < 0

    def test_counter_zero_exactly_at_threshold(self):
        mechanism = BandwidthAdaptiveMechanism(AdaptiveConfig())
        value = mechanism.observe_cycles(busy_cycles=384, idle_cycles=128)
        assert value == 0

    def test_other_thresholds_balance(self):
        for threshold, busy, idle in ((0.55, 55, 45), (0.95, 95, 5)):
            mechanism = BandwidthAdaptiveMechanism(
                AdaptiveConfig(utilization_threshold=threshold, sampling_interval=100)
            )
            assert mechanism.observe_cycles(busy, idle) == 0


class TestPolicyCounter:
    def test_sustained_high_utilization_drives_toward_unicast(self):
        mechanism = BandwidthAdaptiveMechanism(AdaptiveConfig(policy_counter_bits=8))
        for _ in range(300):
            mechanism.observe_interval(utilization=0.95)
        assert mechanism.unicast_probability == pytest.approx(1.0)

    def test_sustained_low_utilization_drives_toward_broadcast(self):
        mechanism = BandwidthAdaptiveMechanism(AdaptiveConfig(policy_counter_bits=8))
        for _ in range(300):
            mechanism.observe_interval(utilization=0.95)
        for _ in range(300):
            mechanism.observe_interval(utilization=0.10)
        assert mechanism.unicast_probability == pytest.approx(0.0)

    def test_full_swing_takes_2_to_the_bits_samples(self):
        mechanism = BandwidthAdaptiveMechanism(AdaptiveConfig(policy_counter_bits=8))
        for count in range(1, 256):
            mechanism.observe_interval(utilization=1.0)
            assert mechanism.policy_counter.value == count
        mechanism.observe_interval(utilization=1.0)
        assert mechanism.policy_counter.value == 255  # saturated

    def test_utilization_counter_reset_after_sample(self):
        mechanism = BandwidthAdaptiveMechanism(AdaptiveConfig())
        mechanism.observe_interval(utilization=1.0)
        assert mechanism.utilization_counter.value == 0

    def test_history_records_samples(self):
        mechanism = BandwidthAdaptiveMechanism(AdaptiveConfig())
        mechanism.observe_interval(utilization=0.9, time=512)
        assert len(mechanism.history) == 1
        sample = mechanism.history[0]
        assert sample.time == 512
        assert sample.policy_counter == 1


class TestDecision:
    def test_policy_zero_always_broadcasts(self):
        mechanism = BandwidthAdaptiveMechanism(AdaptiveConfig())
        assert all(mechanism.should_broadcast() for _ in range(200))
        assert mechanism.broadcast_fraction == 1.0

    def test_policy_saturated_never_broadcasts(self):
        mechanism = BandwidthAdaptiveMechanism(AdaptiveConfig())
        mechanism.policy_counter.reset(mechanism.policy_counter.maximum)
        broadcasts = sum(mechanism.should_broadcast() for _ in range(200))
        assert broadcasts == 0

    def test_intermediate_policy_gives_intermediate_probability(self):
        mechanism = BandwidthAdaptiveMechanism(AdaptiveConfig())
        mechanism.policy_counter.reset(100)  # 39% unicast probability
        decisions = [mechanism.should_broadcast() for _ in range(4000)]
        broadcast_fraction = sum(decisions) / len(decisions)
        assert broadcast_fraction == pytest.approx(1 - 100 / 255, abs=0.06)

    def test_decision_counters(self):
        mechanism = BandwidthAdaptiveMechanism(AdaptiveConfig())
        for _ in range(10):
            mechanism.should_broadcast()
        assert mechanism.decisions == 10


class TestHistoryBounds:
    def test_history_is_a_ring_buffer_by_default(self):
        config = AdaptiveConfig(history_capacity=4)
        mechanism = BandwidthAdaptiveMechanism(config)
        for index in range(10):
            mechanism.observe_interval(utilization=0.5, time=index)
        assert len(mechanism.history) == 4
        # The ring keeps the most recent samples.
        assert [sample.time for sample in mechanism.history] == [6, 7, 8, 9]

    def test_full_recording_is_opt_in(self):
        config = AdaptiveConfig(history_capacity=4, record_full_history=True)
        mechanism = BandwidthAdaptiveMechanism(config)
        for index in range(10):
            mechanism.observe_interval(utilization=0.5, time=index)
        assert len(mechanism.history) == 10

    def test_history_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(history_capacity=0)
