"""Behaviour of the Snooping protocol on small directed scenarios."""

import pytest

from repro.coherence.state import MOSIState
from repro.common.config import ProtocolName
from repro.errors import ProtocolError
from repro.interconnect.message import MessageType
from repro.workloads.base import MemoryOperation

from ..conftest import build_trace_system


def run_trace(operations, protocol=ProtocolName.SNOOPING, num_processors=4, bandwidth=100_000.0):
    system = build_trace_system(protocol, operations, num_processors, bandwidth)
    system.run(max_cycles=2_000_000)
    return system


class TestSnoopingBasics:
    def test_store_miss_makes_requester_modified(self):
        ops = {0: [MemoryOperation(address=0, is_write=True)], 1: [], 2: [], 3: []}
        system = run_trace(ops)
        assert system.nodes[0].cache_controller.state_of(0) is MOSIState.MODIFIED

    def test_load_miss_makes_requester_shared(self):
        ops = {0: [MemoryOperation(address=64, is_write=False)], 1: [], 2: [], 3: []}
        system = run_trace(ops)
        assert system.nodes[0].cache_controller.state_of(64) is MOSIState.SHARED

    def test_cache_to_cache_transfer_downgrades_owner_to_owned(self):
        ops = {
            0: [MemoryOperation(address=0, is_write=True)],
            1: [MemoryOperation(address=0, is_write=False, think_cycles=1500)],
            2: [],
            3: [],
        }
        system = run_trace(ops)
        assert system.nodes[0].cache_controller.state_of(0) is MOSIState.OWNED
        assert system.nodes[1].cache_controller.state_of(0) is MOSIState.SHARED

    def test_second_writer_invalidates_first(self):
        ops = {
            0: [MemoryOperation(address=0, is_write=True)],
            1: [MemoryOperation(address=0, is_write=True, think_cycles=1500)],
            2: [],
            3: [],
        }
        system = run_trace(ops)
        assert system.nodes[0].cache_controller.state_of(0) is MOSIState.INVALID
        assert system.nodes[1].cache_controller.state_of(0) is MOSIState.MODIFIED

    def test_store_invalidates_all_sharers(self):
        ops = {
            0: [MemoryOperation(address=0, is_write=False)],
            1: [MemoryOperation(address=0, is_write=False)],
            2: [MemoryOperation(address=0, is_write=True, think_cycles=2000)],
            3: [],
        }
        system = run_trace(ops)
        assert system.nodes[0].cache_controller.state_of(0) is MOSIState.INVALID
        assert system.nodes[1].cache_controller.state_of(0) is MOSIState.INVALID
        assert system.nodes[2].cache_controller.state_of(0) is MOSIState.MODIFIED

    def test_data_token_travels_with_ownership(self):
        ops = {
            0: [MemoryOperation(address=0, is_write=True)],
            1: [MemoryOperation(address=0, is_write=False, think_cycles=1500)],
            2: [],
            3: [],
        }
        system = run_trace(ops)
        owner_token = system.nodes[0].cache_controller.blocks.lookup(0).data_token
        sharer_token = system.nodes[1].cache_controller.blocks.lookup(0).data_token
        assert owner_token == sharer_token
        assert owner_token != 0

    def test_memory_owner_bit_cleared_by_getm(self):
        ops = {0: [MemoryOperation(address=0, is_write=True)], 1: [], 2: [], 3: []}
        system = run_trace(ops)
        home = system.config.home_node(0)
        entry = system.nodes[home].memory_controller.directory.lookup(0)
        assert not entry.memory_is_owner


class TestSnoopingWritebacks:
    def test_writeback_returns_ownership_to_memory(self):
        ops = {0: [MemoryOperation(address=0, is_write=True)], 1: [], 2: [], 3: []}
        system = build_trace_system(ProtocolName.SNOOPING, ops)
        system.run(max_cycles=1_000_000)
        cache0 = system.nodes[0].cache_controller
        done = []
        cache0.issue_writeback(0, callback=lambda txn: done.append(txn))
        system.simulator.run(until=system.simulator.now + 100_000)
        assert done
        assert cache0.state_of(0) is MOSIState.INVALID
        home = system.config.home_node(0)
        entry = system.nodes[home].memory_controller.directory.lookup(0)
        assert entry.memory_is_owner
        assert entry.data_token != 0

    def test_data_survives_writeback_then_read(self):
        ops = {
            0: [MemoryOperation(address=0, is_write=True)],
            1: [MemoryOperation(address=0, is_write=False, think_cycles=4000)],
            2: [],
            3: [],
        }
        system = build_trace_system(ProtocolName.SNOOPING, ops)
        # Let P0's store complete, then write the block back before P1 reads.
        system.run(max_cycles=1000)
        cache0 = system.nodes[0].cache_controller
        assert cache0.state_of(0).is_owner
        cache0.issue_writeback(0)
        system.simulator.run(until=2_000_000)
        token0 = system.nodes[1].cache_controller.blocks.lookup(0).data_token
        home = system.config.home_node(0)
        assert token0 == system.nodes[home].memory_controller.directory.lookup(0).data_token

    def test_writeback_requires_ownership(self):
        system = build_trace_system(ProtocolName.SNOOPING, {0: [], 1: [], 2: [], 3: []})
        with pytest.raises(ProtocolError):
            system.nodes[0].cache_controller.issue_writeback(0)


class TestIssueValidation:
    def test_cannot_issue_two_requests_for_same_block(self):
        system = build_trace_system(ProtocolName.SNOOPING, {0: [], 1: [], 2: [], 3: []})
        cache = system.nodes[0].cache_controller
        cache.issue_request(0, MessageType.GETM)
        with pytest.raises(ProtocolError):
            cache.issue_request(0, MessageType.GETS)

    def test_cannot_issue_gets_for_valid_block(self):
        ops = {0: [MemoryOperation(address=0, is_write=False)], 1: [], 2: [], 3: []}
        system = run_trace(ops)
        with pytest.raises(ProtocolError):
            system.nodes[0].cache_controller.issue_request(0, MessageType.GETS)

    def test_only_gets_getm_allowed(self):
        system = build_trace_system(ProtocolName.SNOOPING, {0: [], 1: [], 2: [], 3: []})
        with pytest.raises(ProtocolError):
            system.nodes[0].cache_controller.issue_request(0, MessageType.PUTM)
