"""Protocol specifications and the Table 1 complexity comparison."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.complexity import (
    PAPER_TABLE_1,
    complexity_table,
    format_table,
    protocol_specs,
    relative_shape_holds,
)
from repro.protocols.spec import ControllerSpec, Transition


class TestControllerSpec:
    def test_counts(self):
        spec = ControllerSpec(
            name="toy",
            stable_states=("A", "B"),
            transient_states=("T",),
            events=("x", "y"),
            transitions=[
                Transition("A", "x", "B"),
                Transition("B", "y", "A"),
                Transition("T", "x", "A"),
            ],
        )
        assert spec.state_count == 3
        assert spec.event_count == 2
        assert spec.transition_count == 3
        assert spec.next_state("A", "x") == "B"
        assert spec.defined("B", "y")
        assert not spec.defined("A", "y")

    def test_rejects_unknown_states_and_duplicates(self):
        with pytest.raises(ConfigurationError):
            ControllerSpec(
                name="bad",
                stable_states=("A",),
                transient_states=(),
                events=("x",),
                transitions=[Transition("A", "x", "Z")],
            )
        with pytest.raises(ConfigurationError):
            ControllerSpec(
                name="bad",
                stable_states=("A",),
                transient_states=(),
                events=("x",),
                transitions=[Transition("A", "x", "A"), Transition("A", "x", "A")],
            )
        with pytest.raises(ConfigurationError):
            ControllerSpec(
                name="bad",
                stable_states=("A",),
                transient_states=(),
                events=("x",),
                transitions=[Transition("A", "zzz", "A")],
            )


class TestProtocolSpecs:
    def test_all_three_protocols_have_specs(self):
        specs = protocol_specs()
        assert set(specs) == {"BASH", "Snooping", "Directory"}

    def test_every_spec_contains_mosi_stable_states(self):
        for spec in protocol_specs().values():
            assert {"I", "S", "O", "M"}.issubset(set(spec.cache.stable_states))

    def test_cache_specs_are_nontrivial(self):
        for spec in protocol_specs().values():
            assert spec.cache.state_count >= 15
            assert spec.cache.transition_count >= 40

    def test_table_rows_have_all_columns(self):
        for row in complexity_table().values():
            assert set(row) == set(PAPER_TABLE_1["BASH"])


class TestTable1Shape:
    def test_bash_has_more_events_than_baselines(self):
        table = complexity_table()
        assert table["BASH"]["total_events"] > table["Snooping"]["total_events"]
        assert table["BASH"]["total_events"] > table["Directory"]["total_events"]

    def test_bash_has_substantially_more_transitions(self):
        table = complexity_table()
        assert table["BASH"]["total_transitions"] >= 1.3 * table["Snooping"]["total_transitions"]
        assert table["BASH"]["total_transitions"] >= 1.3 * table["Directory"]["total_transitions"]

    def test_state_counts_are_comparable(self):
        table = complexity_table()
        most_states = max(row["total_states"] for row in table.values())
        least_states = min(row["total_states"] for row in table.values())
        assert most_states <= 1.5 * least_states

    def test_relative_shape_helper(self):
        assert relative_shape_holds()

    def test_paper_table_is_reproduced_verbatim(self):
        assert PAPER_TABLE_1["BASH"]["total_transitions"] == 114
        assert PAPER_TABLE_1["Snooping"]["total_transitions"] == 68
        assert PAPER_TABLE_1["Directory"]["total_transitions"] == 75

    def test_format_table_renders_both_tables(self):
        text = format_table(include_paper=True)
        assert "BASH" in text
        assert "as published" in text
