"""The table-driven dispatch engine: coverage, rejection, and fusion.

Every controller declares its ``(message type -> handler)`` tables; the node
compiles them into the delivery entries the networks index directly.  These
tests pin the handled/rejected split for **every** message type on **every**
controller, so adding a message type without deciding who handles it fails
here rather than mid-simulation.
"""

from __future__ import annotations

import pytest

from repro import _core
from repro.common.config import ProtocolName
from repro.errors import ProtocolError
from repro.interconnect.message import DestinationUnit, Message, MessageType
from repro.protocols.bash.cache_controller import BashCacheController
from repro.protocols.bash.memory_controller import BashMemoryController
from repro.protocols.directory.cache_controller import DirectoryCacheController
from repro.protocols.directory.memory_controller import DirectoryMemoryController
from repro.protocols.snooping.cache_controller import SnoopingCacheController
from repro.protocols.snooping.memory_controller import SnoopingMemoryController

from ..conftest import ALL_PROTOCOLS, build_trace_system

needs_compiled = pytest.mark.skipif(
    not _core.compiled_available(),
    reason="compiled extension not built (python -m repro._core.build)",
)

#: The complete dispatch contract: for every controller class, the message
#: types it handles per network.  Everything else is explicitly rejected
#: through the shared error path.
EXPECTED_TABLES = {
    SnoopingCacheController: {
        "ordered": {MessageType.GETS, MessageType.GETM, MessageType.PUTM},
        "unordered": {MessageType.DATA},
    },
    SnoopingMemoryController: {
        "ordered": {MessageType.GETS, MessageType.GETM, MessageType.PUTM},
        "unordered": {MessageType.WB_DATA, MessageType.WB_SQUASH},
    },
    DirectoryCacheController: {
        "ordered": {
            MessageType.MARKER,
            MessageType.FWD_GETS,
            MessageType.FWD_GETM,
            MessageType.PUT_ACK,
            MessageType.PUT_NACK,
        },
        "unordered": {MessageType.DATA},
    },
    DirectoryMemoryController: {
        "ordered": set(),
        "unordered": {MessageType.GETS, MessageType.GETM, MessageType.PUTM},
    },
    BashCacheController: {
        "ordered": {MessageType.GETS, MessageType.GETM, MessageType.PUTM},
        "unordered": {MessageType.DATA, MessageType.NACK},
    },
    BashMemoryController: {
        "ordered": {MessageType.GETS, MessageType.GETM, MessageType.PUTM},
        "unordered": {MessageType.WB_DATA, MessageType.WB_SQUASH},
    },
}

CONTROLLER_CLASSES = {
    ProtocolName.SNOOPING: (SnoopingCacheController, SnoopingMemoryController),
    ProtocolName.DIRECTORY: (DirectoryCacheController, DirectoryMemoryController),
    ProtocolName.BASH: (BashCacheController, BashMemoryController),
}


def _system(protocol):
    return build_trace_system(protocol, {n: [] for n in range(4)})


def _message(msg_type, dest_unit=DestinationUnit.CACHE):
    return Message(
        msg_type=msg_type,
        src=0,
        dest=1,
        dest_unit=dest_unit,
        address=64,  # homed at node 1 in the 4-node test system
        size_bytes=8,
        requester=0,
        recipients=frozenset(range(4)),
        transaction_id=-2,  # matches no live transaction
    )


class TestDeclaredTables:
    """The class-level declarations match the compiled contract exactly."""

    @pytest.mark.parametrize("controller_class", EXPECTED_TABLES, ids=lambda c: c.__name__)
    def test_declared_types_match_contract(self, controller_class):
        expected = EXPECTED_TABLES[controller_class]
        assert set(controller_class.ORDERED_HANDLERS) == expected["ordered"]
        assert set(controller_class.UNORDERED_HANDLERS) == expected["unordered"]

    @pytest.mark.parametrize("controller_class", EXPECTED_TABLES, ids=lambda c: c.__name__)
    def test_declared_methods_exist(self, controller_class):
        for spec in (controller_class.ORDERED_HANDLERS, controller_class.UNORDERED_HANDLERS):
            for msg_type, method_name in spec.items():
                assert callable(getattr(controller_class, method_name)), (
                    f"{controller_class.__name__} declares {msg_type} -> "
                    f"{method_name!r} but has no such method"
                )

    def test_every_message_type_is_decided_everywhere(self):
        """Exhaustiveness: each controller handles or explicitly rejects each type."""
        for controller_class, expected in EXPECTED_TABLES.items():
            for msg_type in MessageType:
                for network in ("ordered", "unordered"):
                    decided = msg_type in expected[network]
                    declared = msg_type in getattr(
                        controller_class, f"{network.upper()}_HANDLERS"
                    )
                    assert declared == decided


class TestCompiledDispatch:
    """The compiled instance tables and node entries behave as declared."""

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=str)
    def test_compiled_tables_are_bound_methods(self, protocol):
        system = _system(protocol)
        node = system.nodes[1]
        for controller in (node.cache_controller, node.memory_controller):
            for table_name in ("ordered_handlers", "unordered_handlers"):
                for msg_type, handler in getattr(controller, table_name).items():
                    assert callable(handler)
                    assert getattr(handler, "__self__", None) is controller, (
                        f"{type(controller).__name__} table entry for {msg_type} "
                        "is not bound to the controller"
                    )

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=str)
    def test_unhandled_types_reject_on_both_networks(self, protocol):
        system = _system(protocol)
        node = system.nodes[1]
        cache_cls = type(node.cache_controller)
        memory_cls = type(node.memory_controller)
        for msg_type in MessageType:
            # Unordered: the destination unit selects exactly one controller.
            for unit, cls in (
                (DestinationUnit.CACHE, cache_cls),
                (DestinationUnit.MEMORY, memory_cls),
            ):
                if msg_type not in EXPECTED_TABLES[cls]["unordered"]:
                    with pytest.raises(ProtocolError):
                        node.deliver_unordered(_message(msg_type, unit))
            # Ordered: the cache controller sees everything first; a type it
            # rejects fails loudly no matter what the memory side thinks.
            if msg_type not in EXPECTED_TABLES[cache_cls]["ordered"]:
                with pytest.raises(ProtocolError):
                    node.deliver_ordered(_message(msg_type))

    def test_directory_ordered_entries_skip_the_memory_side(self):
        """The Directory home consumes nothing ordered: entries collapse to
        the bare cache handler (no home-filter wrapper, no memory frame)."""
        system = _system(ProtocolName.DIRECTORY)
        node = system.nodes[1]
        entry = node.ordered_entry(MessageType.MARKER)
        # Under a compiled backend the entry is the C delivery object for
        # the same handler; under pure it is the bare bound method.
        assert (
            entry is node.cache_controller.ordered_handlers[MessageType.MARKER]
            or type(entry).__name__ == "DirDeliver"
        )

    def test_snooping_ordered_entries_wrap_the_home_filter(self):
        system = _system(ProtocolName.SNOOPING)
        node = system.nodes[1]
        entry = node.ordered_entry(MessageType.GETS)
        assert entry is not node.cache_controller.ordered_handlers[MessageType.GETS]

    def test_rejection_names_the_controller_and_network(self):
        system = _system(ProtocolName.DIRECTORY)
        node = system.nodes[1]
        with pytest.raises(ProtocolError, match="DirectoryCacheController.*ordered"):
            node.deliver_ordered(_message(MessageType.GETS))

    def test_construction_fails_on_a_dangling_handler_declaration(self):
        from repro.protocols.dispatch import compile_handlers

        class Dangling:
            pass

        with pytest.raises(ProtocolError, match="no such method"):
            compile_handlers(Dangling(), {MessageType.DATA: "_missing_method"})


class TestCompiledDataEntries:
    """The unordered DATA fast path: selection, decline, and release folding."""

    @needs_compiled
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=str)
    def test_data_entry_is_the_c_delivery_object(self, protocol):
        with _core.use_backend("compiled"):
            system = _system(protocol)
            node = system.nodes[1]
            entry = node.unordered_entry(DestinationUnit.CACHE, MessageType.DATA)
            assert type(entry).__name__ == "DataDeliver"
            # DATA is point-to-point (exactly one delivery), so the arena
            # release is folded into the C call; the network must see the
            # advertisement and skip its deliver_and_release wrapper.
            has_arena = getattr(system.simulator.scheduler, "arena", None) is not None
            assert entry.releases_message is has_arena

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=str)
    def test_pure_backend_keeps_the_bound_method(self, protocol):
        with _core.use_backend("pure"):
            system = _system(protocol)
            node = system.nodes[1]
            entry = node.unordered_entry(DestinationUnit.CACHE, MessageType.DATA)
            controller = node.cache_controller
            assert entry is controller.unordered_handlers[MessageType.DATA]

    @needs_compiled
    @pytest.mark.parametrize(
        "controller_class, method_name",
        [
            (SnoopingCacheController, "_finish_gets"),
            (DirectoryCacheController, "_complete"),
            (BashCacheController, "_handle_data"),
        ],
        ids=lambda value: getattr(value, "__name__", value),
    )
    def test_patched_data_chain_declines_to_pure(
        self, monkeypatch, controller_class, method_name
    ):
        """A class-level monkeypatch of any inlined method keeps the pure
        handler authoritative for the DATA entry (bug-injection tests rely
        on exactly this)."""
        protocol = {
            SnoopingCacheController: ProtocolName.SNOOPING,
            DirectoryCacheController: ProtocolName.DIRECTORY,
            BashCacheController: ProtocolName.BASH,
        }[controller_class]
        original = getattr(controller_class, method_name)

        def patched(self, *args, **kwargs):
            return original(self, *args, **kwargs)

        monkeypatch.setattr(controller_class, method_name, patched)
        with _core.use_backend("compiled"):
            system = _system(protocol)
            node = system.nodes[1]
            entry = node.unordered_entry(DestinationUnit.CACHE, MessageType.DATA)
            assert entry is node.cache_controller.unordered_handlers[MessageType.DATA]

    @needs_compiled
    def test_swapped_table_entry_declines_to_pure(self):
        """An instance-level table swap (no class patch) also declines."""
        with _core.use_backend("compiled"):
            system = _system(ProtocolName.SNOOPING)
            node = system.nodes[1]
            controller = node.cache_controller
            seen = []

            def custom_handler(message):
                seen.append(message)

            controller.unordered_handlers[MessageType.DATA] = custom_handler
            node.invalidate_dispatch_cache()
            entry = node.unordered_entry(DestinationUnit.CACHE, MessageType.DATA)
            assert entry is custom_handler
