"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import AdaptiveConfig
from repro.common.counters import SignedSaturatingCounter, UnsignedSaturatingCounter
from repro.common.lfsr import LinearFeedbackShiftRegister
from repro.common.stats import RunningMean
from repro.common.units import transfer_cycles
from repro.coherence.directory import DirectoryEntry
from repro.interconnect.link import EndpointLink
from repro.protocols.bash.adaptive import BandwidthAdaptiveMechanism
from repro.queueing.mva import mva_single_station


class TestCounterProperties:
    @given(st.lists(st.integers(min_value=-50, max_value=50), max_size=200))
    def test_signed_counter_never_leaves_its_range(self, deltas):
        counter = SignedSaturatingCounter(limit=100)
        for delta in deltas:
            counter.add(delta)
            assert -100 <= counter.value <= 100

    @given(
        st.integers(min_value=1, max_value=12),
        st.lists(st.tuples(st.booleans(), st.integers(min_value=0, max_value=20)), max_size=100),
    )
    def test_unsigned_counter_never_leaves_its_range(self, bits, steps):
        counter = UnsignedSaturatingCounter(bits=bits)
        for up, amount in steps:
            if up:
                counter.increment(amount)
            else:
                counter.decrement(amount)
            assert 0 <= counter.value <= counter.maximum

    @given(st.lists(st.booleans(), min_size=1, max_size=512))
    def test_utilization_counter_sign_matches_threshold_comparison(self, pattern):
        config = AdaptiveConfig(utilization_threshold=0.75, sampling_interval=len(pattern))
        mechanism = BandwidthAdaptiveMechanism(config)
        for busy in pattern:
            mechanism.observe_cycle(busy)
        utilization = sum(pattern) / len(pattern)
        value = mechanism.utilization_counter.value
        if utilization > 0.75:
            assert value > 0
        elif utilization < 0.75:
            assert value < 0
        else:
            assert value == 0


class TestLfsrProperties:
    @given(st.integers(min_value=1, max_value=0xFFFF), st.integers(min_value=1, max_value=64))
    def test_outputs_fit_width(self, seed, draws):
        lfsr = LinearFeedbackShiftRegister(seed=seed)
        for _ in range(draws):
            assert 0 <= lfsr.next_int(8) <= 255

    @given(st.integers(min_value=1, max_value=0xFFFF))
    def test_state_never_becomes_zero(self, seed):
        lfsr = LinearFeedbackShiftRegister(seed=seed)
        for _ in range(64):
            lfsr.next_bit()
            assert lfsr.state != 0


class TestLinkProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2000),
                st.integers(min_value=1, max_value=200),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_busy_time_is_monotone_and_bounded(self, events):
        link = EndpointLink("l", bytes_per_cycle=1.0)
        now = 0
        for delay, size in events:
            now += delay
            link.transmit(now=now, size_bytes=size)
        horizon = link.busy_until + 10
        previous = 0
        for t in range(0, horizon, max(1, horizon // 50)):
            busy = link.busy_time_up_to(t)
            assert busy >= previous
            assert busy <= t
            previous = busy
        total_payload = sum(size for _, size in events)
        assert link.busy_time_up_to(horizon) == total_payload

    @given(st.integers(min_value=1, max_value=4096), st.floats(min_value=0.05, max_value=64.0))
    def test_transfer_cycles_cover_the_payload(self, size, bandwidth):
        cycles = transfer_cycles(size, bandwidth)
        assert cycles * bandwidth >= size - 1e-6
        assert (cycles - 1) * bandwidth < size or cycles == 1


class TestDirectoryEntryProperties:
    @given(
        st.integers(min_value=0, max_value=7),
        st.sets(st.integers(min_value=0, max_value=7), max_size=8),
        st.integers(min_value=-1, max_value=7),
        st.sets(st.integers(min_value=0, max_value=7), max_size=8),
    )
    def test_superset_recipients_preserve_sufficiency(self, requester, sharers, owner, recipients):
        entry = DirectoryEntry(address=0, owner=owner, sharers=set(sharers))
        base = frozenset(recipients)
        everyone = frozenset(range(8))
        for is_getm in (True, False):
            if entry.is_sufficient(is_getm, requester, base):
                assert entry.is_sufficient(is_getm, requester, everyone)

    @given(st.sets(st.integers(min_value=0, max_value=15), max_size=16), st.integers(min_value=0, max_value=15))
    def test_broadcast_is_always_sufficient(self, sharers, owner):
        entry = DirectoryEntry(address=0, owner=owner, sharers=set(sharers))
        everyone = frozenset(range(16))
        assert entry.is_sufficient(True, 0, everyone)
        assert entry.is_sufficient(False, 0, everyone)


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=300))
    def test_running_mean_matches_batch_mean(self, values):
        mean = RunningMean("x")
        mean.record_many(values)
        assert mean.mean == (sum(values) / len(values)) or math.isclose(
            mean.mean, sum(values) / len(values), rel_tol=1e-9, abs_tol=1e-6
        )
        assert mean.minimum == min(values)
        assert mean.maximum == max(values)


class TestQueueingProperties:
    @settings(max_examples=30)
    @given(
        st.integers(min_value=1, max_value=64),
        st.floats(min_value=0.1, max_value=4.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_mva_outputs_are_physical(self, customers, service, think):
        point = mva_single_station(customers, service, think)
        assert 0.0 <= point.utilization <= 1.0
        assert point.queueing_delay >= 0.0
        assert point.throughput * service <= 1.0 + 1e-9
        assert point.queue_length <= customers + 1e-9
