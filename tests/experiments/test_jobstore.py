"""The durable job store: claims, leases, retries, corruption, recovery."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.errors import JobStoreError
from repro.experiments.jobstore import (
    DONE,
    FAILED,
    LEASED,
    PENDING,
    QUARANTINED,
    JobStore,
    WorkUnit,
)


class FakeClock:
    """Manually advanced wall clock anchored at real time (mtime-compatible)."""

    def __init__(self) -> None:
        self.now = time.time()

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def store(tmp_path, clock):
    return JobStore(
        tmp_path / "store",
        lease_timeout=10.0,
        max_attempts=3,
        backoff_base=0.5,
        backoff_cap=30.0,
        clock=clock,
    )


def _unit(unit_id: str = "u1", **payload) -> WorkUnit:
    return WorkUnit(unit_id=unit_id, kind="test", description=unit_id,
                    payload=payload or {"n": 1})


def _events(store, name=None):
    events = store.journal_entries()
    if name is None:
        return events
    return [event for event in events if event["event"] == name]


class TestLifecycle:
    def test_enqueue_claim_complete_roundtrip(self, store):
        assert store.enqueue(_unit("a")) == PENDING
        lease = store.claim("w1")
        assert lease is not None and lease.unit.unit_id == "a"
        assert store.find("a") == LEASED
        assert store.complete(lease, {"value": 42})
        assert store.find("a") == DONE
        assert store.load_result("a") == {"value": 42}
        assert [e["event"] for e in _events(store)] == ["enqueue", "claim", "done"]
        assert store.finished(["a"])

    def test_enqueue_known_unit_preserves_state(self, store):
        store.enqueue(_unit("a"))
        lease = store.claim("w1")
        store.complete(lease, {"value": 1})
        # Re-enqueueing the same campaign resumes instead of recomputing.
        assert store.enqueue(_unit("a")) == DONE
        assert len(_events(store, "enqueue")) == 1

    def test_claim_has_exactly_one_winner(self, store):
        store.enqueue(_unit("a"))
        first = store.claim("w1")
        second = store.claim("w2")
        assert first is not None
        assert second is None

    def test_claim_skips_units_in_backoff(self, store, clock):
        store.enqueue(_unit("a"))
        lease = store.claim("w1")
        store.fail(lease, "boom")
        clock.advance(store._backoff(1) + 0.01)
        store.recover()  # moves the due retry back to pending
        claimed = store.claim("w1")
        assert claimed is not None and claimed.unit.attempts == 1

    def test_unknown_unit_raises(self, store):
        with pytest.raises(JobStoreError):
            store.unit("nope")


class TestLeases:
    def test_expired_lease_is_redispatched(self, store, clock):
        store.enqueue(_unit("a"))
        store.claim("w1")
        clock.advance(store.lease_timeout + 1.0)
        recovered = store.recover()
        assert recovered["expired"] == 1
        assert store.find("a") == PENDING
        assert store.unit("a").attempts == 1
        events = [e["event"] for e in _events(store)]
        assert "lease-expired" in events and "requeue" in events

    def test_heartbeat_extends_the_lease(self, store, clock):
        store.enqueue(_unit("a"))
        lease = store.claim("w1")
        clock.advance(store.lease_timeout - 1.0)
        assert store.heartbeat(lease)
        clock.advance(store.lease_timeout - 1.0)
        assert store.recover()["expired"] == 0
        assert store.find("a") == LEASED

    def test_commit_after_lease_loss_is_fenced(self, store, clock):
        store.enqueue(_unit("a"))
        stale = store.claim("w1")
        clock.advance(store.lease_timeout + 1.0)
        store.recover()
        clock.advance(store._backoff(1) + 0.01)  # past the retry backoff
        fresh = store.claim("w2")
        assert fresh is not None
        assert not store.complete(stale, {"value": "stale"})
        assert store.complete(fresh, {"value": "fresh"})
        assert store.load_result("a") == {"value": "fresh"}

    def test_fail_after_lease_loss_is_fenced(self, store, clock):
        store.enqueue(_unit("a"))
        stale = store.claim("w1")
        clock.advance(store.lease_timeout + 1.0)
        store.recover()
        clock.advance(store._backoff(1) + 0.01)  # past the retry backoff
        fresh = store.claim("w2")
        assert fresh is not None
        assert store.fail(stale, "stale failure") == LEASED
        # The new holder's unit was not touched by the stale failure.
        assert store.find("a") == LEASED
        assert store.complete(fresh, {"value": 1})

    def test_expire_worker_redispatches_immediately(self, store):
        store.enqueue(_unit("a"))
        store.claim("w1")
        # No clock advance: the coordinator observed the process die.
        assert store.expire_worker("w1") == 1
        assert store.find("a") == PENDING

    def test_missing_sidecar_gets_mtime_grace(self, store, clock):
        store.enqueue(_unit("a"))
        store.claim("w1")
        store._lease_path("a").unlink()
        assert store.recover()["expired"] == 0  # fresh ticket: grace period
        old = clock() - store.lease_timeout - 1.0
        os.utime(store._ticket(LEASED, "a"), (old, old))
        assert store.recover()["expired"] == 1
        assert store.find("a") == PENDING


class TestRetries:
    def test_backoff_is_exponential_and_capped(self, store):
        assert store._backoff(1) == 0.5
        assert store._backoff(2) == 1.0
        assert store._backoff(3) == 2.0
        assert store._backoff(100) == store.backoff_cap

    def test_failed_unit_waits_out_its_backoff(self, store, clock):
        store.enqueue(_unit("a"))
        store.fail(store.claim("w1"), "boom")
        assert store.find("a") == FAILED
        assert store.recover()["retried"] == 0  # not due yet
        clock.advance(store._backoff(1) + 0.01)
        assert store.recover()["retried"] == 1
        assert store.find("a") == PENDING
        assert store.unit("a").last_error == "boom"

    def test_poison_unit_quarantined_with_artifact(self, store, clock):
        store.enqueue(_unit("a"))
        for attempt in range(store.max_attempts):
            clock.advance(store.backoff_cap + 1.0)
            store.recover()
            lease = store.claim("w1")
            assert lease is not None, f"attempt {attempt} could not claim"
            store.fail(lease, f"boom {attempt}")
        assert store.find("a") == QUARANTINED
        artifact = store.artifacts_dir / "a.poison.json"
        payload = json.loads(artifact.read_text())
        assert payload["format"] == "repro-poison-unit-v1"
        assert "boom" in payload["reason"]
        # Quarantine is terminal but not fatal: the campaign can finish.
        assert store.finished(["a"])

    def test_release_returns_unit_without_burning_an_attempt(self, store):
        store.enqueue(_unit("a"))
        store.release(store.claim("w1"))
        assert store.find("a") == PENDING
        assert store.unit("a").attempts == 0


class TestCorruptResults:
    def test_torn_result_is_quarantined_and_recomputed(self, store):
        store.enqueue(_unit("a"))
        store.complete(store.claim("w1"), {"value": 1}, _corrupt=True)
        assert store.find("a") == DONE
        assert store.load_result("a") is None  # detected on read
        assert (store.root / "results" / "a.json.corrupt").exists()
        assert store.find("a") == PENDING  # requeued for recomputation
        assert store.complete(store.claim("w2"), {"value": 1})
        assert store.load_result("a") == {"value": 1}
        assert len(_events(store, "result-corrupt")) == 1


class TestRecovery:
    def test_dedupe_keeps_the_transition_target(self, store):
        store.enqueue(_unit("a"))
        # Simulate a crash mid-commit: ticket copied to done, source left.
        ticket = store.unit("a").to_jsonable()
        store._write_json(store._ticket(DONE, "a"), ticket)
        assert store._ticket(PENDING, "a").exists()
        store.recover()
        assert store.find("a") == DONE
        assert not store._ticket(PENDING, "a").exists()

    def test_recover_is_idempotent_on_a_quiet_store(self, store):
        store.enqueue(_unit("a"))
        store.complete(store.claim("w1"), {"value": 1})
        before = store.journal_offset()
        assert store.recover() == {"expired": 0, "retried": 0}
        assert store.journal_offset() == before

    def test_fresh_store_reopens_with_state_intact(self, tmp_path, clock):
        first = JobStore(tmp_path / "s", clock=clock)
        first.enqueue(_unit("a"))
        first.complete(first.claim("w1"), {"value": 7})
        first.enqueue(_unit("b"))
        # A brand-new handle (fresh process) sees the same truth.
        second = JobStore(tmp_path / "s", clock=clock)
        assert second.find("a") == DONE
        assert second.find("b") == PENDING
        assert second.load_result("a") == {"value": 7}


class TestSpeculation:
    def test_speculative_copy_is_claimable(self, store):
        store.enqueue(_unit("a"))
        original = store.claim("w1")
        assert store.speculate("a")
        speculative = store.claim("w2")
        assert speculative is not None and speculative.unit.unit_id == "a"
        # The speculative claim re-fenced the lease: the straggler loses.
        assert not store.complete(original, {"value": 1})
        assert store.complete(speculative, {"value": 1})
        assert store.load_result("a") == {"value": 1}

    def test_speculate_refuses_double_dispatch_twice(self, store):
        store.enqueue(_unit("a"))
        store.claim("w1")
        assert store.speculate("a")
        assert not store.speculate("a")  # pending copy already exists
