"""Shared fixtures for the experiment-harness tests."""

from repro.experiments.runner import ExperimentScale

#: A miniature scale so the harness tests stay fast.
TINY = ExperimentScale(
    name="tiny",
    microbenchmark_processors=4,
    workload_processors=4,
    acquires_per_processor=15,
    operations_per_processor=15,
    num_locks=64,
    bandwidth_points=(800, 6400),
    workload_bandwidth_points=(1600,),
    processor_counts=(4,),
    think_times=(0,),
    sampling_interval=64,
    policy_counter_bits=5,
    seeds=(1,),
)
