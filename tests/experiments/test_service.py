"""The campaign service: chaos tolerance, resume, and serial equivalence."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ServiceError
from repro.experiments.jobstore import DONE, JobStore
from repro.experiments.parallel import (
    PointSpec,
    _point_to_json,
    run_sweep,
)
from repro.experiments.runner import (
    QUICK,
    microbenchmark_factory,
)
from repro.experiments.service import (
    FaultPlan,
    ServiceConfig,
    run_service_sweep,
    run_worker,
    unit_for_spec,
)

TINY = dataclasses.replace(
    QUICK,
    name="tiny",
    microbenchmark_processors=4,
    acquires_per_processor=8,
    num_locks=16,
    bandwidth_points=(800.0, 3200.0),
    seeds=(1,),
)


def _specs(protocols=("bash", "snooping")):
    workload = microbenchmark_factory(TINY)
    return [
        PointSpec(scale=TINY, protocol=protocol, bandwidth=bandwidth, workload=workload)
        for protocol in protocols
        for bandwidth in TINY.bandwidth_points
    ]


def _json(points):
    return [_point_to_json(point) for point in points]


@pytest.fixture(scope="module")
def serial_points():
    return run_sweep(_specs(), workers=1)


class TestFaultPlan:
    def test_parse_round_trips_every_token(self):
        plan = FaultPlan.parse("kill-after:3,drop-heartbeats,corrupt-result:2")
        assert plan.kill_after == 3
        assert plan.drop_heartbeats
        assert plan.corrupt_results == 2
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None

    def test_parse_rejects_unknown_tokens(self):
        with pytest.raises(ServiceError):
            FaultPlan.parse("explode-randomly")


class TestServiceEqualsSerial:
    def test_inline_service_matches_serial_field_for_field(
        self, tmp_path, serial_points
    ):
        points, summary = run_service_sweep(
            _specs(), ServiceConfig(store=tmp_path / "store")
        )
        assert _json(points) == _json(serial_points)
        assert summary.to_jsonable()["ok"]
        assert summary.done == len(points)

    def test_fleet_service_matches_serial_field_for_field(
        self, tmp_path, serial_points
    ):
        points, summary = run_service_sweep(
            _specs(), ServiceConfig(store=tmp_path / "store", workers=2)
        )
        assert _json(points) == _json(serial_points)
        assert summary.done == len(points)


class TestChaos:
    def test_killed_worker_campaign_still_completes(self, tmp_path, serial_points):
        """A worker dying mid-unit re-dispatches its lease; results unchanged."""
        config = ServiceConfig(
            store=tmp_path / "store",
            fault_plan=FaultPlan(kill_after=2),
        )
        points, summary = run_service_sweep(_specs(), config)
        assert _json(points) == _json(serial_points)
        assert summary.worker_deaths >= 1
        assert summary.redispatched >= 1
        assert not summary.quarantined

    def test_corrupt_result_write_is_recomputed(self, tmp_path, serial_points):
        config = ServiceConfig(
            store=tmp_path / "store",
            fault_plan=FaultPlan(corrupt_results=1),
        )
        points, summary = run_service_sweep(_specs(), config)
        assert _json(points) == _json(serial_points)
        assert summary.corrupt_results >= 1
        store = config.job_store()
        corrupt = list((store.root / "results").glob("*.corrupt"))
        assert corrupt, "torn result file was not quarantined"

    def test_dropped_heartbeats_expire_and_redispatch(self, tmp_path, serial_points):
        """With heartbeats off and a tiny lease, every unit survives expiry."""
        config = ServiceConfig(
            store=tmp_path / "store",
            fault_plan=FaultPlan(drop_heartbeats=True),
            lease_timeout=0.5,
        )
        points, summary = run_service_sweep(_specs(), config)
        assert _json(points) == _json(serial_points)
        assert not summary.quarantined


class TestResume:
    def test_interrupted_campaign_resumes_with_zero_recomputation(
        self, tmp_path, serial_points
    ):
        specs = _specs()
        store = JobStore(tmp_path / "store")
        for spec in specs:
            store.enqueue(unit_for_spec(spec))
        # Interrupt: a bounded worker drains part of the campaign and exits.
        stats = run_worker(store, max_units=2)
        assert stats.completed == 2
        done_before = set(store.ids(DONE))
        offset = store.journal_offset()

        points, summary = run_service_sweep(specs, ServiceConfig(store=store))
        assert _json(points) == _json(serial_points)
        assert summary.resumed == 2
        # The journal proves no done unit was ever claimed again.
        claimed_after = {
            event["unit"]
            for event in store.journal_entries(offset=offset)
            if event["event"] == "claim"
        }
        assert done_before.isdisjoint(claimed_after)
        assert len(claimed_after) == len(specs) - 2

    def test_second_run_recomputes_nothing_at_all(self, tmp_path):
        specs = _specs()
        config = ServiceConfig(store=tmp_path / "store")
        run_service_sweep(specs, config)
        store = config.job_store()
        offset = store.journal_offset()
        points, summary = run_service_sweep(specs, config)
        assert summary.resumed == len(specs)
        events = store.journal_entries(offset=offset)
        assert not [event for event in events if event["event"] == "claim"]
        assert all(point is not None for point in points)


class TestPoisonUnits:
    def test_poison_unit_quarantines_and_campaign_continues(self, tmp_path):
        """A unit that always crashes is quarantined; the rest still finish."""
        from repro.experiments import service as service_module

        specs = _specs()
        units = [unit_for_spec(spec) for spec in specs]
        poison_id = units[0].unit_id
        original = service_module.execute_unit

        def sabotaged(unit, runner=None, store=None):
            if unit.unit_id == poison_id:
                raise RuntimeError("synthetic poison unit")
            return original(unit, runner, store)

        config = ServiceConfig(
            store=tmp_path / "store", max_attempts=2, lease_timeout=5.0
        )
        store = config.job_store()
        store.backoff_base = 0.01  # keep retry waits test-sized
        import unittest.mock

        with unittest.mock.patch.object(
            service_module, "execute_unit", sabotaged
        ):
            with pytest.raises(ServiceError, match="poison"):
                run_service_sweep(specs, ServiceConfig(store=store))
        # Strictness raised after the fact; the rest of the campaign is done.
        assert store.find(poison_id) == "quarantine"
        done = [u.unit_id for u in units if store.find(u.unit_id) == DONE]
        assert len(done) == len(units) - 1
        assert (store.artifacts_dir / f"{poison_id}.poison.json").exists()

        points, summary = run_service_sweep(specs, ServiceConfig(store=store), strict=False)
        assert summary.quarantined == [poison_id]
        assert [p is None for p in points].count(True) == 1


class TestSweepIntegration:
    def test_run_sweep_routes_through_the_service(self, tmp_path, serial_points):
        specs = _specs()
        points = run_sweep(specs, service=ServiceConfig(store=tmp_path / "store"))
        assert _json(points) == _json(serial_points)
        # The store now holds every unit durably.
        store = JobStore(tmp_path / "store")
        assert len(store.ids(DONE)) == len(specs)
