"""Experiment harness: runners, figure drivers, and report formatting."""

import pytest

from repro.common.config import ProtocolName
from repro.experiments import (
    PROTOCOLS,
    QUICK,
    crossover_summary,
    figure2_queueing_delay,
    figure3_utilization_counter,
    figure4_transaction_walkthrough,
    figure5_normalized_performance,
    figure6_link_utilization,
    figure12_workload_bars,
    format_bars,
    format_curves,
    format_normalized,
    table1_complexity,
)
from repro.experiments.runner import (
    microbenchmark_factory,
    normalize_to,
    protocol_sweep,
    run_point,
)

from .conftest import TINY


class TestRunner:
    def test_run_point_returns_all_metrics(self):
        point = run_point(TINY, ProtocolName.SNOOPING, 1600, microbenchmark_factory(TINY))
        assert point.performance > 0
        assert point.mean_miss_latency > 0
        assert 0 <= point.link_utilization <= 1
        assert point.results

    def test_protocol_sweep_covers_all_protocols_and_points(self):
        curves = protocol_sweep(TINY, TINY.bandwidth_points, microbenchmark_factory(TINY))
        assert set(curves) == set(PROTOCOLS)
        for points in curves.values():
            assert [p.x for p in points] == list(TINY.bandwidth_points)

    def test_normalize_to_reference_is_one(self):
        curves = protocol_sweep(TINY, (1600,), microbenchmark_factory(TINY))
        normalised = normalize_to(curves, ProtocolName.BASH)
        assert normalised[ProtocolName.BASH] == [pytest.approx(1.0)]

    def test_normalize_to_handles_mismatched_sweep_grids(self):
        # The snooping curve has an x-point the reference (BASH) curve lacks:
        # that point must normalise to 0.0, not raise.
        curves = protocol_sweep(
            TINY,
            (1600,),
            microbenchmark_factory(TINY),
            protocols=(ProtocolName.SNOOPING, ProtocolName.BASH),
        )
        extra = protocol_sweep(
            TINY, (3200,), microbenchmark_factory(TINY),
            protocols=(ProtocolName.SNOOPING,),
        )
        curves[ProtocolName.SNOOPING].extend(extra[ProtocolName.SNOOPING])
        normalised = normalize_to(curves, ProtocolName.BASH)
        assert normalised[ProtocolName.BASH] == [pytest.approx(1.0)]
        assert normalised[ProtocolName.SNOOPING][0] > 0
        assert normalised[ProtocolName.SNOOPING][1] == 0.0

    def test_normalize_to_missing_reference_curve_raises(self):
        curves = protocol_sweep(
            TINY, (1600,), microbenchmark_factory(TINY),
            protocols=(ProtocolName.SNOOPING,),
        )
        with pytest.raises(KeyError):
            normalize_to(curves, ProtocolName.BASH)

    def test_quick_scale_has_paper_thresholds(self):
        adaptive = QUICK.adaptive_config(0.75)
        assert adaptive.utilization_threshold == 0.75


class TestLightweightFigures:
    def test_figure2(self):
        points = figure2_queueing_delay()
        assert len(points) > 5
        assert points[-1]["queueing_delay"] > points[0]["queueing_delay"]

    def test_figure3_matches_paper_example(self):
        data = figure3_utilization_counter()
        assert data["counter_values"][-1] == -5
        assert len(data["counter_values"]) == 7

    def test_figure4_latencies(self):
        walkthrough = figure4_transaction_walkthrough()
        snoop_c2c = walkthrough["snooping:cache-to-cache"]["requester_miss_latency"]
        dir_c2c = walkthrough["directory:cache-to-cache"]["requester_miss_latency"]
        mem = walkthrough["snooping:memory-to-cache"]["requester_miss_latency"]
        assert snoop_c2c == pytest.approx(125, abs=10)
        assert dir_c2c == pytest.approx(255, abs=12)
        assert mem == pytest.approx(180, abs=10)

    def test_table1_contains_both_sources(self):
        table = table1_complexity()
        assert set(table) == {"reproduction", "paper"}
        assert table["paper"]["BASH"]["total_transitions"] == 114


class TestSweepFigures:
    def test_figure5_and_6_from_shared_sweep(self):
        from repro.experiments import figure1_microbenchmark_performance

        curves = figure1_microbenchmark_performance(TINY, bandwidths=(800, 6400))
        normalised = figure5_normalized_performance(curves)
        assert all(len(vals) == 2 for vals in normalised.values())
        utilization = figure6_link_utilization(curves)
        snooping_util = [p["utilization"] for p in utilization[ProtocolName.SNOOPING]]
        directory_util = [p["utilization"] for p in utilization[ProtocolName.DIRECTORY]]
        # Snooping always uses more of the endpoint links than Directory.
        assert all(s > d for s, d in zip(snooping_util, directory_util))
        summary = crossover_summary(curves)
        assert "bash_worst_ratio_vs_best_static" in summary

    def test_figure12_bars_normalised_to_bash(self):
        bars = figure12_workload_bars(TINY, workloads=("specjbb",), bandwidth=1600)
        assert set(bars) == {"specjbb"}
        assert bars["specjbb"][str(ProtocolName.BASH)] == pytest.approx(1.0)


class TestReportFormatting:
    def test_format_curves_and_normalized(self):
        curves = protocol_sweep(TINY, (1600,), microbenchmark_factory(TINY))
        text = format_curves("Figure 1", curves)
        assert "Figure 1" in text and "snooping" in text
        normalised = normalize_to(curves, ProtocolName.BASH)
        text2 = format_normalized("Figure 5", normalised, xs=(1600,))
        assert "1600" in text2

    def test_format_bars(self):
        text = format_bars("Figure 12", {"oltp": {"bash": 1.0, "snooping": 0.9}})
        assert "oltp" in text

    def test_format_curves_guards_mismatched_grids(self):
        # Mirroring the normalize_to guard: curves measured on different x
        # grids must raise a clear error instead of silently misaligning
        # rows against the first protocol's x values.
        curves = protocol_sweep(
            TINY, (1600,), microbenchmark_factory(TINY),
            protocols=(ProtocolName.SNOOPING, ProtocolName.BASH),
        )
        extra = protocol_sweep(
            TINY, (3200,), microbenchmark_factory(TINY),
            protocols=(ProtocolName.SNOOPING,),
        )
        curves[ProtocolName.SNOOPING].extend(extra[ProtocolName.SNOOPING])
        with pytest.raises(ValueError, match="mismatched sweep grids"):
            format_curves("Figure 1", curves)
