"""Scenario engine: grids, result frames, registry, and the new scenarios."""

import dataclasses
import json
import pickle

import pytest

from repro.common.config import ProtocolName
from repro.experiments.parallel import PointSpec
from repro.experiments.runner import (
    PROTOCOLS,
    microbenchmark_factory,
    normalize_to,
    protocol_sweep,
    synthetic_factory,
)
from repro.experiments.scenario import (
    SCALES,
    SCENARIOS,
    AnalyticScenario,
    GridScenario,
    get_scenario,
    run_scenario,
)
from repro.experiments.study import Axis, ResultFrame, StudyError, StudyGrid
from repro.workloads.patterns import (
    MigratoryWorkload,
    MigratoryWorkloadSpec,
    MixedTraceWorkloadSpec,
    ProducerConsumerWorkload,
    ProducerConsumerWorkloadSpec,
    ReadMostlyWorkloadSpec,
    build_mixed_trace,
)

from .conftest import TINY

PAPER_SCENARIOS = tuple(f"figure{i}" for i in range(1, 13)) + ("table1",)
NEW_SCENARIOS = ("migratory", "producer_consumer", "web_serving", "mixed_trace")


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        for name in PAPER_SCENARIOS:
            assert name in SCENARIOS, name

    def test_new_scenarios_registered_as_grids(self):
        for name in NEW_SCENARIOS:
            assert SCENARIOS[name].kind == "grid", name

    def test_sweep_figures_are_grid_scenarios(self):
        for index in (1, 5, 6, 7, 8, 9, 10, 11, 12):
            assert SCENARIOS[f"figure{index}"].kind == "grid"
        for name in ("figure2", "figure3", "figure4", "table1"):
            assert SCENARIOS[name].kind == "analytic"

    def test_unknown_scenario_raises_with_listing(self):
        with pytest.raises(StudyError, match="figure1"):
            get_scenario("nonsense")

    def test_named_scales(self):
        assert set(SCALES) >= {"quick", "paper"}
        with pytest.raises(StudyError, match="unknown scale"):
            run_scenario("figure3", scale="galactic")

    def test_analytic_scenario_rejects_axis_overrides(self):
        with pytest.raises(StudyError, match="analytic"):
            run_scenario("figure3", axes={"bandwidth": (800,)})


class TestStudyGrid:
    def test_expansion_matches_hand_built_figure1_specs(self):
        # The engine must assemble the exact PointSpecs the old hand-rolled
        # figure1 driver built, in the same order.
        grid = SCENARIOS["figure1"].grid(TINY)
        expected = [
            PointSpec(
                scale=TINY,
                protocol=protocol,
                bandwidth=bandwidth,
                workload=microbenchmark_factory(TINY),
            )
            for protocol in PROTOCOLS
            for bandwidth in TINY.bandwidth_points
        ]
        assert grid.specs() == expected

    def test_expansion_matches_hand_built_figure9_specs(self):
        grid = SCENARIOS["figure9"].grid(TINY, axes={"think_time": (0, 200)})
        expected = [
            PointSpec(
                scale=TINY,
                protocol=protocol,
                bandwidth=1600.0,
                workload=microbenchmark_factory(TINY, think_cycles=think),
                x_value=think,
            )
            for protocol in PROTOCOLS
            for think in (0, 200)
        ]
        assert grid.specs() == expected

    def test_grid_len_is_cross_product(self):
        grid = SCENARIOS["figure10"].grid(TINY)
        # 6 workloads x 3 protocols x 1 bandwidth point at TINY scale.
        assert len(grid) == 6 * 3 * 1
        assert len(grid.specs()) == len(grid)

    def test_axis_override_and_unknown_override(self):
        grid = SCENARIOS["figure1"].grid(TINY, axes={"bandwidth": (800,)})
        assert grid.axis_values["bandwidth"] == (800,)
        with pytest.raises(StudyError, match="unknown axis"):
            SCENARIOS["figure1"].grid(TINY, axes={"volume": (11,)})

    def test_protocol_axis_strings_are_canonicalised(self):
        grid = SCENARIOS["figure1"].grid(TINY, axes={"protocol": ("bash",)})
        assert grid.axis_values["protocol"] == (ProtocolName.BASH,)
        assert all(isinstance(v, ProtocolName) for v in grid.axis_values["protocol"])

    def test_mistyped_protocol_value_raises_study_error(self):
        with pytest.raises(StudyError, match="invalid protocol"):
            SCENARIOS["figure1"].grid(TINY, axes={"protocol": ("bsah",)})

    def test_fractional_integer_axis_value_raises(self):
        # int(4.5) would run a 4-processor simulation labelled 4.5 on the
        # x axis — reject instead of silently mislabeling the data point.
        grid = SCENARIOS["figure8"].grid(TINY, axes={"num_processors": (4.5,)})
        with pytest.raises(StudyError, match="whole number"):
            grid.specs()

    def test_fixed_override_colliding_with_axis_raises(self):
        # Axis coordinates always beat fixed values, so a colliding fixed
        # entry would be silently ignored (and the full grid would run).
        with pytest.raises(StudyError, match="collide with axes"):
            run_scenario(
                "figure1", scale=TINY, fixed={"protocol": ProtocolName.BASH}
            )

    def test_int_and_float_axis_values_share_cache_keys(self):
        # A CLI override parses `bandwidth=1600` as int; the scales carry
        # floats.  Both must build the identical spec (and cache key), or a
        # resumed campaign would recompute every memoised point.
        int_spec = SCENARIOS["figure1"].grid(TINY, axes={"bandwidth": (1600,)}).specs()[0]
        float_spec = SCENARIOS["figure1"].grid(TINY, axes={"bandwidth": (1600.0,)}).specs()[0]
        assert isinstance(int_spec.bandwidth, float)
        assert int_spec == float_spec
        assert int_spec.cache_key() == float_spec.cache_key()

    def test_seed_axis_pins_each_point_to_one_seed(self):
        scale = dataclasses.replace(TINY, seeds=(1, 2))
        grid = StudyGrid(
            scale,
            axes=(
                Axis("protocol", values=(ProtocolName.SNOOPING,)),
                Axis("seed", values=(1, 2)),
            ),
            workload=lambda s, coords: microbenchmark_factory(s),
            fixed={"bandwidth": 1600.0},
        )
        specs = grid.specs()
        assert [spec.scale.seeds for spec in specs] == [(1,), (2,)]

    def test_missing_protocol_axis_raises(self):
        grid = StudyGrid(
            TINY,
            axes=(Axis("bandwidth", values=(800,)),),
            workload=lambda s, coords: microbenchmark_factory(s),
        )
        with pytest.raises(StudyError, match="protocol"):
            grid.specs()

    def test_engine_matches_direct_protocol_sweep(self):
        # The tentpole contract: the declarative path produces exactly what
        # the direct protocol_sweep path produces.
        frame = SCENARIOS["figure1"].grid(TINY).run()
        direct = protocol_sweep(
            TINY, TINY.bandwidth_points, microbenchmark_factory(TINY)
        )
        assert frame.curves(by="protocol") == direct


class TestResultFrame:
    @pytest.fixture(scope="class")
    def frame(self):
        return SCENARIOS["figure1"].grid(TINY).run()

    def test_columns_and_rows(self, frame):
        assert len(frame) == len(PROTOCOLS) * len(TINY.bandwidth_points)
        assert set(frame.axis_names) == {"protocol", "bandwidth"}
        for metric in ResultFrame.METRICS:
            assert len(frame.column(metric)) == len(frame)
        row = frame.rows()[0]
        assert row["protocol"] == PROTOCOLS[0]
        assert row["performance"] == frame.points[0].performance
        assert frame.column("num_seeds") == [1] * len(frame)

    def test_unknown_column_raises(self, frame):
        with pytest.raises(KeyError, match="available"):
            frame.column("latency_p99")
        with pytest.raises(KeyError):
            frame.filter(latency_p99=1)

    def test_filter_and_unique(self, frame):
        bash = frame.filter(protocol=ProtocolName.BASH)
        assert len(bash) == len(TINY.bandwidth_points)
        assert bash.unique("protocol") == [ProtocolName.BASH]
        assert frame.unique("bandwidth") == list(TINY.bandwidth_points)

    def test_normalized_matches_normalize_to(self, frame):
        normalised = frame.normalized("performance", baseline={"protocol": ProtocolName.BASH})
        legacy = normalize_to(frame.curves(by="protocol"), ProtocolName.BASH)
        column = normalised.column("performance_vs_bash")
        for index, row in enumerate(normalised.rows()):
            position = list(TINY.bandwidth_points).index(row["bandwidth"])
            assert column[index] == pytest.approx(legacy[row["protocol"]][position])

    def test_speedup_baseline_rows_are_one(self, frame):
        speedup = frame.speedup()
        for row in speedup.filter(protocol=ProtocolName.BASH).rows():
            assert row["speedup"] == pytest.approx(1.0)

    def test_normalized_missing_baseline_raises(self, frame):
        with pytest.raises(KeyError, match="matches no rows"):
            frame.normalized("performance", baseline={"protocol": "token-ring"})

    def test_with_column_callable_and_length_guard(self, frame):
        derived = frame.with_column(
            "mbps_per_latency",
            lambda row: row["bandwidth"] / row["mean_miss_latency"],
        )
        assert len(derived.column("mbps_per_latency")) == len(frame)
        with pytest.raises(StudyError, match="rows"):
            frame.with_column("bad", [1.0])

    def test_aggregate_collapses_groups(self, frame):
        aggregated = frame.aggregate(by=["protocol"])
        assert len(aggregated) == len(PROTOCOLS)
        bash_rows = [
            r for r in aggregated.rows() if r["protocol"] == ProtocolName.BASH
        ]
        expected = frame.filter(protocol=ProtocolName.BASH).column("performance")
        assert bash_rows[0]["performance"] == pytest.approx(
            sum(expected) / len(expected)
        )
        assert bash_rows[0]["rows"] == len(expected)
        with pytest.raises(StudyError, match="no SweepPoints"):
            aggregated.curves()

    def test_json_round_trip(self, frame):
        derived = frame.speedup()
        data = json.loads(json.dumps(derived.to_json()))
        restored = ResultFrame.from_json(data)
        assert restored.axis_names == derived.axis_names
        assert restored.columns["protocol"] == derived.columns["protocol"]
        assert restored.columns["performance"] == derived.columns["performance"]
        assert restored.columns["speedup"] == derived.columns["speedup"]
        assert len(restored.points) == len(derived.points)
        for a, b in zip(restored.points, derived.points):
            assert a == b  # SweepPoint dataclass equality, RunResults included
        # And the restored frame is still a working frame:
        assert restored.filter(protocol=ProtocolName.BASH).curves()


class TestNewScenarios:
    @pytest.mark.parametrize("name", NEW_SCENARIOS)
    def test_runs_end_to_end(self, name):
        result = run_scenario(
            name, scale=TINY, axes={"protocol": (ProtocolName.SNOOPING,), "bandwidth": (1600,)}
        )
        assert result.frame is not None
        assert len(result.frame) == 1
        assert result.frame.column("performance")[0] > 0
        assert result.text()  # default rendering works

    @pytest.mark.parametrize(
        "spec",
        [
            MigratoryWorkloadSpec(num_blocks=8, rounds_per_processor=4),
            ProducerConsumerWorkloadSpec(buffer_blocks=4, rounds=2),
            ReadMostlyWorkloadSpec(shared_blocks=16, operations_per_processor=8),
            MixedTraceWorkloadSpec(num_processors=4, operations_per_processor=8),
        ],
    )
    def test_specs_are_picklable_and_cacheable(self, spec):
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert isinstance(spec.cache_token(), str)
        workload = spec(seed=1)
        assert workload.describe()

    def test_migratory_emits_read_write_pairs(self):
        import random

        workload = MigratoryWorkload(num_blocks=8, rounds_per_processor=2)
        workload.bind(4, 64, random.Random(1))
        first = workload.next_operation(0, now=0)
        second = workload.next_operation(0, now=0)
        assert not first.is_write and second.is_write
        assert first.address == second.address

    def test_migratory_staggers_even_when_processors_outnumber_blocks(self):
        import random

        # With more processors than blocks the stride must floor at 1, or
        # every processor would walk the identical block sequence in
        # lockstep (all-contend, not migratory sharing).
        workload = MigratoryWorkload(num_blocks=8, rounds_per_processor=2)
        workload.bind(16, 64, random.Random(1))
        starts = {
            node: workload.next_operation(node, now=0).address for node in (0, 1, 2)
        }
        assert len(set(starts.values())) > 1

    def test_producer_consumer_pairs_share_buffers(self):
        import random

        workload = ProducerConsumerWorkload(buffer_blocks=2, rounds=1)
        workload.bind(4, 64, random.Random(1))
        produced = [workload.next_operation(0, now=0) for _ in range(2)]
        consumed = [workload.next_operation(1, now=0) for _ in range(2)]
        assert all(op.is_write for op in produced)
        assert all(not op.is_write for op in consumed)
        assert [op.address for op in produced] == [op.address for op in consumed]

    def test_mixed_trace_is_deterministic_per_seed(self):
        kwargs = dict(
            num_processors=4,
            operations_per_processor=12,
            shared_blocks=16,
            private_blocks=32,
            block_bytes=64,
        )
        assert build_mixed_trace(seed=7, **kwargs) == build_mixed_trace(seed=7, **kwargs)
        assert build_mixed_trace(seed=7, **kwargs) != build_mixed_trace(seed=8, **kwargs)


class TestFigureDriverPlumbing:
    def test_figure5_threads_workers_and_cache_dir(self, monkeypatch, tmp_path):
        # Historically figure5 rebuilt Figure 1 serially and uncached; the
        # registry migration threads both knobs through to run_sweep.
        from repro.experiments import figures, study

        captured = {}
        original = study.run_sweep

        def spy(specs, workers=None, cache_dir=None, batch=True, service=None):
            captured["workers"] = workers
            captured["cache_dir"] = cache_dir
            return original(
                specs, workers=None, cache_dir=cache_dir, batch=batch,
                service=service,
            )

        monkeypatch.setattr(study, "run_sweep", spy)
        figures.figure5_normalized_performance(
            scale=TINY, workers=3, cache_dir=tmp_path
        )
        assert captured["workers"] == 3
        assert captured["cache_dir"] == tmp_path
        assert list(tmp_path.glob("*.json"))  # points actually memoised

    def test_figure5_cached_rerun_matches(self, tmp_path):
        from repro.experiments import figures

        first = figures.figure5_normalized_performance(scale=TINY, cache_dir=tmp_path)
        second = figures.figure5_normalized_performance(scale=TINY, cache_dir=tmp_path)
        assert first == second

    def test_custom_scenario_registration_round_trip(self):
        from repro.experiments.scenario import register

        scenario = GridScenario(
            name="_test_custom",
            title="custom",
            description="registered by the test suite",
            axes=(
                Axis("protocol", values=(ProtocolName.SNOOPING,)),
                Axis("bandwidth", values=(1600,)),
            ),
            workload=lambda scale, coords: microbenchmark_factory(scale),
        )
        register(scenario)
        try:
            result = run_scenario("_test_custom", scale=TINY)
            assert result.frame is not None and len(result.frame) == 1
            # Default presentation (no `present`) is protocol curves.
            assert set(result.data) == {ProtocolName.SNOOPING}
        finally:
            SCENARIOS.pop("_test_custom", None)

    def test_analytic_scenarios_match_driver_functions(self):
        from repro.experiments import figures

        assert run_scenario("figure3").data == figures.figure3_utilization_counter()
        assert run_scenario("table1").data == figures.table1_complexity()

    def test_empty_axis_override_yields_keyed_empty_curves(self):
        # Parity with the pre-engine drivers: a zero-point sweep returns
        # {protocol: []} per protocol, not an exception or a bare {}.
        from repro.experiments import figures

        curves = figures.figure9_think_time(scale=TINY, think_times=())
        assert curves == {protocol: [] for protocol in PROTOCOLS}

    def test_text_rendering_uses_the_scenario_subject(self):
        # figure6 is *about* link utilization: the CLI table must show it,
        # not the default performance column.
        result = run_scenario(
            "figure6", scale=TINY, axes={"bandwidth": (1600,)}
        )
        utilization = result.frame.column("link_utilization")[0]
        assert f"{utilization:.5f}" in result.text()

    def test_format_frame_renders_aggregated_frames(self):
        from repro.experiments.report import format_frame

        frame = SCENARIOS["figure1"].grid(TINY).run()
        aggregated = frame.aggregate(by=["protocol"])
        text = format_frame("aggregated", aggregated)
        assert "snooping" in text

    def test_format_frame_renders_non_numeric_x_axis(self):
        from repro.experiments.report import format_frame

        scenario = GridScenario(
            name="_test_string_x",
            title="string x",
            description="x axis is the workload name",
            axes=(
                Axis("protocol", values=(ProtocolName.SNOOPING,)),
                Axis("workload", values=("specjbb",)),
            ),
            workload=lambda scale, coords: synthetic_factory(
                scale, coords["workload"]
            ),
            x_axis="workload",
            fixed={"bandwidth": 1600.0},
        )
        frame = scenario.grid(TINY).run()
        text = format_frame("custom", frame, x_label="workload")
        assert "specjbb" in text


class TestTrafficScenarioRegistration:
    def test_traffic_grids_registered(self):
        for name in ("zipfian", "diurnal", "bursty", "multi_tenant"):
            assert SCENARIOS[name].kind == "grid", name

    def test_traffic_validation_is_analytic(self):
        assert SCENARIOS["traffic_validation"].kind == "analytic"

    def test_traffic_grid_expands_protocol_x_bandwidth(self):
        grid = SCENARIOS["zipfian"].grid(TINY)
        protocols = {spec.protocol for spec in grid.specs()}
        assert len(protocols) == 3
        assert len(grid) % len(protocols) == 0
