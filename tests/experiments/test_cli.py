"""The `python -m repro` command line: list, run, overrides, exports."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cli import main
from repro.experiments.scenario import SCENARIOS


class TestList:
    def test_lists_every_registered_scenario(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_json_listing(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in payload} == set(SCENARIOS)
        assert all(entry["kind"] in ("grid", "analytic") for entry in payload)


class TestRun:
    def test_analytic_scenario(self, capsys):
        assert main(["run", "figure3"]) == 0
        out = capsys.readouterr().out
        assert "counter_values" in out

    def test_grid_scenario_with_axis_overrides(self, capsys):
        # One (protocol, bandwidth) point so the CLI test stays fast.
        assert main(
            ["run", "figure1", "--scale", "quick",
             "--axis", "bandwidth=1600", "--axis", "protocol=bash"]
        ) == 0
        out = capsys.readouterr().out
        assert "bash" in out and "1600" in out

    def test_json_export_round_trips_the_frame(self, capsys, tmp_path):
        from repro.experiments.study import ResultFrame

        target = tmp_path / "result.json"
        assert main(
            ["run", "figure1", "--axis", "bandwidth=1600",
             "--axis", "protocol=bash", "--json", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload["scenario"] == "figure1"
        assert payload["scale"] == "quick"
        frame = ResultFrame.from_json(payload["frame"])
        assert len(frame) == 1
        assert frame.column("performance")[0] > 0

    def test_json_to_stdout(self, capsys):
        assert main(["run", "table1", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["data"]["paper"]["BASH"]["total_transitions"] == 114
        assert payload["frame"] is None

    def test_cache_dir_resumes(self, capsys, tmp_path):
        args = ["run", "figure1", "--axis", "bandwidth=1600",
                "--axis", "protocol=bash", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert list(tmp_path.glob("*.json"))
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["run", "figure99"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err

    def test_malformed_axis_fails_cleanly(self, capsys):
        assert main(["run", "figure1", "--axis", "bandwidth"]) == 2
        assert "--axis expects" in capsys.readouterr().err

    def test_unknown_axis_fails_cleanly(self, capsys):
        assert main(["run", "figure1", "--axis", "volume=11"]) == 2
        assert "unknown axis" in capsys.readouterr().err

    def test_mistyped_protocol_fails_cleanly(self, capsys):
        assert main(["run", "figure1", "--axis", "protocol=bsah"]) == 2
        assert "invalid protocol" in capsys.readouterr().err

    def test_dropping_the_bash_baseline_fails_cleanly(self, capsys):
        # figure5 normalises to BASH; an override omitting it must produce
        # the clean error path, not a KeyError traceback after the sweep.
        assert main(
            ["run", "figure5", "--axis", "protocol=snooping",
             "--axis", "bandwidth=1600"]
        ) == 2
        err = capsys.readouterr().err
        assert "could not present" in err

    def test_list_survives_custom_figure_prefixed_names(self, capsys):
        from repro.experiments.scenario import AnalyticScenario, register

        register(
            AnalyticScenario(
                name="figureX_custom",
                title="custom",
                description="registered by the test suite",
                compute=lambda scale: {},
            )
        )
        try:
            assert main(["list"]) == 0
            assert "figureX_custom" in capsys.readouterr().out
        finally:
            SCENARIOS.pop("figureX_custom", None)


class TestVerify:
    def test_quick_campaign_subset_passes(self, capsys):
        assert main(
            ["verify", "--campaign", "quick", "--seed-range", "0:1"]
        ) == 0
        out = capsys.readouterr().out
        assert "campaign quick: PASS" in out
        assert "differential traces" in out

    def test_json_export_to_stdout(self, capsys):
        assert main(
            ["verify", "--seed-range", "0:1", "--protocol", "directory",
             "--json", "-"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["campaign"] == "quick"
        assert payload["differential_traces"] >= 1
        assert payload["failures"] == []

    def test_json_export_to_file(self, capsys, tmp_path):
        target = tmp_path / "verify.json"
        assert main(
            ["verify", "--seed-range", "0:1", "--protocol", "snooping",
             "--json", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload["ok"] is True
        # The human summary still prints when exporting to a file.
        assert "campaign quick" in capsys.readouterr().out

    def test_malformed_seed_range_fails_cleanly(self, capsys):
        assert main(["verify", "--seed-range", "a:b"]) == 2
        assert "--seed-range expects" in capsys.readouterr().err

    def test_failing_campaign_exits_nonzero_and_writes_artifacts(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.coherence.state import MOSIState
        from repro.interconnect.message import MessageType
        from repro.protocols.directory.cache_controller import (
            DirectoryCacheController,
        )

        original = DirectoryCacheController._serve_forward

        def corrupt(self, block, message):
            if message.msg_type is MessageType.FWD_GETS and block.is_owner:
                self._send_data(
                    block.address, message.requester, 31337,
                    message.transaction_id,
                )
                block.state = MOSIState.OWNED
                block.tracked_sharers.add(message.requester)
                return
            return original(self, block, message)

        monkeypatch.setattr(DirectoryCacheController, "_serve_forward", corrupt)
        assert main(
            ["verify", "--seed-range", "0:3", "--artifact-dir", str(tmp_path)]
        ) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "FAILED differential" in out
        artifacts = list(tmp_path.glob("*.json"))
        assert artifacts
        from repro.verification.campaign import load_artifact

        assert load_artifact(artifacts[0])["failures"]


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        # The real subprocess path: `python -m repro list` must work from a
        # clean interpreter (this is what the CI smoke step runs).
        repo_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo_root / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            check=False,
            cwd=repo_root,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "figure1" in result.stdout


class TestServe:
    def test_serve_runs_a_sweep_through_the_service(self, capsys, tmp_path):
        store = tmp_path / "units"
        assert main(
            [
                "serve", "figure1",
                "--store", str(store),
                "--axis", "bandwidth=800,3200",
                "--json", "-",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["completed"] == payload["units"] == 6
        assert payload["summary"]["done"] == 6
        assert (store / "journal.jsonl").exists()

    def test_serve_chaos_run_redispatches_and_completes(self, capsys, tmp_path):
        assert main(
            [
                "serve", "figure1",
                "--store", str(tmp_path / "units"),
                "--axis", "bandwidth=800,3200",
                "--fault-plan", "kill-after:3",
                "--json", "-",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["summary"]["worker_deaths"] >= 1
        assert payload["summary"]["redispatched"] >= 1

    def test_serve_resumes_without_recomputation(self, capsys, tmp_path):
        store = tmp_path / "units"
        args = [
            "serve", "figure1",
            "--store", str(store),
            "--axis", "bandwidth=800",
            "--json", "-",
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["summary"]["resumed"] == 0
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["summary"]["resumed"] == second["units"]

    def test_serve_rejects_non_sweep_scenarios(self, capsys, tmp_path):
        assert main(
            ["serve", "figure3", "--store", str(tmp_path / "units")]
        ) == 2
        assert "not a sweep" in capsys.readouterr().err

    def test_serve_rejects_unknown_fault_plan(self, capsys, tmp_path):
        assert main(
            [
                "serve", "figure1",
                "--store", str(tmp_path / "units"),
                "--fault-plan", "explode",
            ]
        ) == 2
        assert "fault-plan" in capsys.readouterr().err.lower()


class TestWorker:
    def test_worker_drains_a_prepared_store(self, capsys, tmp_path):
        from repro.experiments.jobstore import JobStore
        from repro.experiments.scenario import get_scenario
        from repro.experiments.service import unit_for_spec

        store = JobStore(tmp_path / "units")
        grid = get_scenario("figure1").grid("quick", axes={"bandwidth": (800.0,)})
        for spec in grid.specs():
            store.enqueue(unit_for_spec(spec))
        assert main(["worker", "--store", str(store.root)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["completed"] == 3
        assert store.finished()


class TestVerifyService:
    def test_verify_through_the_service_store(self, capsys, tmp_path):
        assert main(
            [
                "verify", "--campaign", "quick",
                "--protocol", "bash",
                "--seed-range", "0:2",
                "--service-store", str(tmp_path / "units"),
                "--fault-plan", "kill-after:2",
                "--json", "-",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["service"]["worker_deaths"] >= 1

    def test_fault_plan_without_service_store_fails_cleanly(self, capsys):
        assert main(
            ["verify", "--campaign", "quick", "--fault-plan", "kill-after:1"]
        ) == 2
        assert "--service-store" in capsys.readouterr().err


class TestTraceCommands:
    def test_write_then_info_round_trip(self, capsys, tmp_path):
        path = str(tmp_path / "svc.jsonl")
        assert main(
            ["trace", "write", path, "--processors", "4", "--ops", "120",
             "--seed", "3", "--window", "32"]
        ) == 0
        written = capsys.readouterr().out
        assert "480" in written  # 4 x 120 operations recorded
        assert main(["trace", "info", path]) == 0
        info = capsys.readouterr().out
        assert "repro-trace" in info
        assert "480" in info

    def test_written_trace_replays_through_run(self, capsys, tmp_path):
        # the file a user records with `trace write` must drive a simulation
        from repro.workloads.streaming import (
            JsonlTraceReader,
            StreamingTraceWorkload,
        )
        import random as _random

        path = str(tmp_path / "svc.jsonl")
        assert main(
            ["trace", "write", path, "--processors", "2", "--ops", "40"]
        ) == 0
        capsys.readouterr()
        workload = StreamingTraceWorkload(JsonlTraceReader(path))
        workload.bind(2, 64, _random.Random(1))
        assert workload.next_operation(0, 0) is not None

    def test_info_on_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["trace", "info", str(tmp_path / "nope.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestTrafficScenarios:
    def test_zipfian_scenario_single_point(self, capsys):
        assert main(
            ["run", "zipfian", "--scale", "quick",
             "--axis", "bandwidth=1600", "--axis", "protocol=bash"]
        ) == 0
        out = capsys.readouterr().out
        assert "bash" in out

    def test_traffic_validation_scenario_passes_mva_cross_check(self, capsys):
        assert main(["run", "traffic_validation", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "traffic_validation"
        assert payload["data"]["ok"] is True
        assert payload["data"]["failures"] == []
        for point in payload["data"]["points"]:
            assert point["ok"] is True
