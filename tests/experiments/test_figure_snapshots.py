"""Figure-equivalence: migrated drivers match frozen pre-refactor snapshots.

``tests/data/figure_snapshots_quick.json`` was captured from the hand-rolled
``figure*`` drivers immediately before they were migrated onto the scenario
engine, at QUICK scale.  Every driver must keep producing *field-identical*
output — same protocols, same x grids, same per-seed RunResults, same floats
bit for bit (the simulator is deterministic and floats round-trip exactly
through JSON).  Regenerate the snapshot deliberately (and say so in the PR)
only when the event schedule or the drivers' published shape is *meant* to
change.

The whole module shares one on-disk sweep cache: figures 1, 5 and 6 run the
same grid, and figure 12 is a slice of figure 11, so points computed once are
reused — which simultaneously exercises the cache threading the migration
added to every driver.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import figures
from repro.experiments.runner import QUICK
from repro.experiments.study import to_jsonable

SNAPSHOT_PATH = Path(__file__).parent.parent / "data" / "figure_snapshots_quick.json"


@pytest.fixture(scope="module")
def snapshots():
    return json.loads(SNAPSHOT_PATH.read_text())


@pytest.fixture(scope="module")
def sweep_cache(tmp_path_factory):
    return tmp_path_factory.mktemp("figure-snapshot-cache")


def assert_matches(snapshots, name, value):
    encoded = json.loads(json.dumps(to_jsonable(value)))
    assert encoded == snapshots[name], (
        f"{name} no longer matches its frozen pre-refactor snapshot"
    )


class TestLightweightSnapshots:
    def test_figure2(self, snapshots):
        assert_matches(snapshots, "figure2_queueing_delay", figures.figure2_queueing_delay())

    def test_figure3(self, snapshots):
        assert_matches(
            snapshots, "figure3_utilization_counter", figures.figure3_utilization_counter()
        )

    def test_figure4(self, snapshots):
        assert_matches(
            snapshots,
            "figure4_transaction_walkthrough",
            figures.figure4_transaction_walkthrough(),
        )

    def test_table1(self, snapshots):
        assert_matches(snapshots, "table1_complexity", figures.table1_complexity())


class TestSweepSnapshots:
    def test_figure1(self, snapshots, sweep_cache):
        assert_matches(
            snapshots,
            "figure1_microbenchmark_performance",
            figures.figure1_microbenchmark_performance(QUICK, cache_dir=sweep_cache),
        )

    def test_figure5(self, snapshots, sweep_cache):
        assert_matches(
            snapshots,
            "figure5_normalized_performance",
            figures.figure5_normalized_performance(scale=QUICK, cache_dir=sweep_cache),
        )

    def test_figure6(self, snapshots, sweep_cache):
        assert_matches(
            snapshots,
            "figure6_link_utilization",
            figures.figure6_link_utilization(scale=QUICK, cache_dir=sweep_cache),
        )

    def test_figure7(self, snapshots, sweep_cache):
        assert_matches(
            snapshots,
            "figure7_threshold_sensitivity",
            figures.figure7_threshold_sensitivity(QUICK, cache_dir=sweep_cache),
        )

    def test_figure8(self, snapshots, sweep_cache):
        assert_matches(
            snapshots,
            "figure8_system_size",
            figures.figure8_system_size(QUICK, cache_dir=sweep_cache),
        )

    def test_figure9(self, snapshots, sweep_cache):
        assert_matches(
            snapshots,
            "figure9_think_time",
            figures.figure9_think_time(QUICK, cache_dir=sweep_cache),
        )

    def test_figure10(self, snapshots, sweep_cache):
        assert_matches(
            snapshots,
            "figure10_workloads",
            figures.figure10_workloads(QUICK, cache_dir=sweep_cache),
        )

    def test_figure11(self, snapshots, sweep_cache):
        assert_matches(
            snapshots,
            "figure11_workloads_4x_broadcast",
            figures.figure11_workloads_4x_broadcast(QUICK, cache_dir=sweep_cache),
        )

    def test_figure12(self, snapshots, sweep_cache):
        assert_matches(
            snapshots,
            "figure12_workload_bars",
            figures.figure12_workload_bars(QUICK, cache_dir=sweep_cache),
        )
