"""The parallel sweep executor: determinism, caching, and fallback."""

from __future__ import annotations

import dataclasses
import os
import time

import pytest

from repro.common.config import ProtocolName
from repro.experiments.parallel import (
    TASK_TIMEOUT_ENV,
    PointSpec,
    SweepCache,
    available_workers,
    resolve_task_timeout,
    run_sweep,
    sweep_curves,
)
from repro.experiments.runner import (
    PROTOCOLS,
    QUICK,
    LockingWorkloadSpec,
    microbenchmark_factory,
    protocol_sweep,
)

#: A deliberately tiny scale so each test point simulates in milliseconds.
TINY = dataclasses.replace(
    QUICK,
    name="tiny",
    microbenchmark_processors=4,
    acquires_per_processor=8,
    num_locks=16,
    bandwidth_points=(800.0, 3200.0),
    seeds=(1, 2),
)


def _specs(protocols=PROTOCOLS):
    workload = microbenchmark_factory(TINY)
    return [
        PointSpec(scale=TINY, protocol=protocol, bandwidth=bandwidth, workload=workload)
        for protocol in protocols
        for bandwidth in TINY.bandwidth_points
    ]


def _key(point):
    return (
        point.protocol,
        point.x,
        point.performance,
        point.mean_miss_latency,
        point.link_utilization,
        point.retries,
    )


class TestDeterminism:
    def test_serial_equals_parallel_point_for_point(self):
        specs = _specs()
        serial = run_sweep(specs, workers=1)
        parallel = run_sweep(specs, workers=2)
        assert [_key(p) for p in serial] == [_key(p) for p in parallel]

    def test_protocol_sweep_parallel_matches_serial(self):
        workload = microbenchmark_factory(TINY)
        serial = protocol_sweep(TINY, TINY.bandwidth_points, workload)
        parallel = protocol_sweep(TINY, TINY.bandwidth_points, workload, workers=2)
        for protocol in serial:
            assert [_key(p) for p in serial[protocol]] == [
                _key(p) for p in parallel[protocol]
            ]

    def test_per_point_seeding_is_independent_of_order(self):
        specs = _specs()
        forward = run_sweep(specs, workers=1)
        backward = run_sweep(list(reversed(specs)), workers=1)
        assert [_key(p) for p in forward] == [_key(p) for p in reversed(backward)]


class TestCache:
    def test_cache_hit_skips_resimulation(self, tmp_path, monkeypatch):
        specs = _specs(protocols=(ProtocolName.BASH,))
        first = run_sweep(specs, cache_dir=tmp_path)
        # Poison run_point: a cache hit must not re-simulate.
        import repro.experiments.parallel as parallel_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cache miss: run_point was called")

        monkeypatch.setattr(parallel_module, "run_point", boom)
        second = run_sweep(specs, cache_dir=tmp_path)
        assert [_key(p) for p in first] == [_key(p) for p in second]
        assert second[0].results[0].stats  # full RunResults survive the cache

    def test_cache_key_distinguishes_configs(self):
        workload = microbenchmark_factory(TINY)
        base = PointSpec(
            scale=TINY, protocol=ProtocolName.BASH, bandwidth=800.0, workload=workload
        )
        assert base.cache_key() == dataclasses.replace(base).cache_key()
        assert base.cache_key() != dataclasses.replace(base, bandwidth=1600.0).cache_key()
        assert (
            base.cache_key()
            != dataclasses.replace(base, protocol=ProtocolName.SNOOPING).cache_key()
        )
        other_workload = LockingWorkloadSpec(
            num_locks=TINY.num_locks,
            acquires_per_processor=TINY.acquires_per_processor + 1,
        )
        assert (
            base.cache_key()
            != dataclasses.replace(base, workload=other_workload).cache_key()
        )

    def test_cache_key_distinguishes_backends(self):
        from repro import _core

        workload = microbenchmark_factory(TINY)
        spec = PointSpec(
            scale=TINY, protocol=ProtocolName.BASH, bandwidth=800.0, workload=workload
        )
        with _core.use_backend("pure"):
            pure_key = spec.cache_key()
            assert spec.cache_key() == pure_key  # stable within a backend
        if not _core.compiled_available():
            pytest.skip("compiled extension not built")
        with _core.use_backend("compiled"):
            assert spec.cache_key() != pure_key

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        specs = _specs(protocols=(ProtocolName.SNOOPING,))[:1]
        run_sweep(specs, cache_dir=tmp_path)
        entry = tmp_path / f"{specs[0].cache_key()}.json"
        entry.write_text("{not json")
        again = run_sweep(specs, cache_dir=tmp_path)
        assert again[0].performance > 0


class TestFallbacks:
    def test_unportable_workload_runs_serially(self):
        def closure_factory(seed):
            from repro.workloads.microbenchmark import LockingMicrobenchmark

            return LockingMicrobenchmark(num_locks=16, acquires_per_processor=8)

        spec = PointSpec(
            scale=TINY,
            protocol=ProtocolName.SNOOPING,
            bandwidth=800.0,
            workload=closure_factory,
        )
        assert not spec.is_portable()
        (point,) = run_sweep([spec], workers=4)
        assert point.performance > 0

    def test_workers_auto_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert available_workers() == 3
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "garbage")
        assert available_workers() >= 1

    def test_sweep_curves_groups_in_input_order(self):
        specs = _specs()
        points = run_sweep(specs, workers=1)
        curves = sweep_curves(specs, points, PROTOCOLS)
        for protocol in PROTOCOLS:
            assert [p.x for p in curves[protocol]] == list(TINY.bandwidth_points)
            assert all(p.protocol is protocol for p in curves[protocol])


class TestCacheEnvDefault:
    def test_repro_sweep_cache_env_supplies_default_cache_dir(
        self, tmp_path, monkeypatch
    ):
        """$REPRO_SWEEP_CACHE makes interrupted sweeps resume automatically."""
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
        specs = _specs(protocols=(ProtocolName.SNOOPING,))
        first = run_sweep(specs)
        cached_files = list(tmp_path.glob("*.json"))
        assert cached_files, "sweep points were not memoised in $REPRO_SWEEP_CACHE"

        calls = []
        original = PointSpec.run

        def counting_run(spec):
            calls.append(spec)
            return original(spec)

        monkeypatch.setattr(PointSpec, "run", counting_run)
        second = run_sweep(specs)
        assert not calls, "cached points were re-simulated despite the env cache"
        assert [_key(p) for p in second] == [_key(p) for p in first]

    def test_explicit_cache_dir_wins_over_env(self, tmp_path, monkeypatch):
        env_dir = tmp_path / "env"
        explicit_dir = tmp_path / "explicit"
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(env_dir))
        run_sweep(_specs(protocols=(ProtocolName.SNOOPING,)), cache_dir=explicit_dir)
        assert list(explicit_dir.glob("*.json"))
        assert not env_dir.exists()

    def test_unset_env_means_no_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
        from repro.experiments.parallel import default_cache_dir

        assert default_cache_dir() is None

    def test_cache_dir_false_disables_env_cache(self, tmp_path, monkeypatch):
        """Benchmarks pass cache_dir=False so timed sweeps really run."""
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
        run_sweep(_specs(protocols=(ProtocolName.SNOOPING,)), cache_dir=False)
        assert not list(tmp_path.glob("*.json")), (
            "cache_dir=False must neither read nor write the env cache"
        )

    def test_cache_dir_true_means_default_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
        run_sweep(_specs(protocols=(ProtocolName.SNOOPING,)), cache_dir=True)
        assert list(tmp_path.glob("*.json"))
        monkeypatch.delenv("REPRO_SWEEP_CACHE")
        # True with no env default degrades to "no cache", not a crash.
        run_sweep(_specs(protocols=(ProtocolName.SNOOPING,))[:1], cache_dir=True)


# --------------------------------------------------------------- robustness

_PARENT_PID = os.getpid()


def _hang_in_child(specs_chunk):
    """Pool chunk runner that wedges only inside a pool worker process."""
    if os.getpid() != _PARENT_PID:
        time.sleep(600)  # terminated by shutdown_pool, never finishes
    from repro.experiments.parallel import _run_chunk

    return _run_chunk(specs_chunk)


class TestTaskTimeout:
    def test_timeout_resolution_argument_env_and_disable(self, monkeypatch):
        monkeypatch.delenv(TASK_TIMEOUT_ENV, raising=False)
        assert resolve_task_timeout(None) is None
        assert resolve_task_timeout(5) == 5.0
        assert resolve_task_timeout(False) is None
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "2.5")
        assert resolve_task_timeout(None) == 2.5
        assert resolve_task_timeout(10) == 10.0
        assert resolve_task_timeout(False) is None  # False beats the env
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "garbage")
        assert resolve_task_timeout(None) is None
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "0")
        assert resolve_task_timeout(None) is None

    def test_hung_pool_task_is_cancelled_and_retried_serially(
        self, monkeypatch, caplog
    ):
        import logging

        import repro.experiments.parallel as parallel_module

        specs = _specs(protocols=(ProtocolName.SNOOPING,))
        expected = run_sweep(specs, workers=1)
        monkeypatch.setattr(parallel_module, "_run_chunk", _hang_in_child)
        with caplog.at_level(logging.WARNING, logger="repro.experiments.parallel"):
            points = run_sweep(specs, workers=2, task_timeout=0.5)
        assert [_key(p) for p in points] == [_key(p) for p in expected]
        assert any("task timeout" in record.message for record in caplog.records)


class TestCacheQuarantine:
    def test_corrupt_entry_is_renamed_not_left_in_place(self, tmp_path):
        specs = _specs(protocols=(ProtocolName.SNOOPING,))[:1]
        first = run_sweep(specs, cache_dir=tmp_path)
        entry = tmp_path / f"{specs[0].cache_key()}.json"
        entry.write_text('{"torn":')
        again = run_sweep(specs, cache_dir=tmp_path)
        assert [_key(p) for p in again] == [_key(p) for p in first]
        quarantined = tmp_path / f"{specs[0].cache_key()}.json.corrupt"
        assert quarantined.exists(), "corrupt cache entry was not quarantined"
        # The recomputed point was re-memoised over the old key.
        assert entry.exists()
        third = run_sweep(specs, cache_dir=tmp_path)
        assert [_key(p) for p in third] == [_key(p) for p in first]
