"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import pytest

from repro import _core
from repro.common.config import AdaptiveConfig, ProtocolName, SystemConfig
from repro.system.multiprocessor import MultiprocessorSystem, simulate
from repro.workloads.microbenchmark import LockingMicrobenchmark
from repro.workloads.trace import TraceWorkload

#: The three protocols, in the order the paper lists them.
ALL_PROTOCOLS = (ProtocolName.SNOOPING, ProtocolName.DIRECTORY, ProtocolName.BASH)

#: Adaptive configuration that reaches its operating point in short test runs.
FAST_ADAPTIVE = AdaptiveConfig(sampling_interval=64, policy_counter_bits=5)


def small_config(
    protocol: ProtocolName,
    num_processors: int = 4,
    bandwidth: float = 3200.0,
    seed: int = 1,
    **overrides,
) -> SystemConfig:
    """A small system configuration suitable for unit/integration tests."""
    return SystemConfig(
        num_processors=num_processors,
        protocol=protocol,
        bandwidth_mb_per_second=bandwidth,
        adaptive=overrides.pop("adaptive", FAST_ADAPTIVE),
        random_seed=seed,
        **overrides,
    )


def run_microbenchmark(
    protocol: ProtocolName,
    num_processors: int = 4,
    bandwidth: float = 3200.0,
    acquires: int = 30,
    num_locks: int = 64,
    seed: int = 1,
    think_cycles: int = 0,
):
    """Run a short locking-microbenchmark simulation and return its result."""
    config = small_config(protocol, num_processors, bandwidth, seed)
    workload = LockingMicrobenchmark(
        num_locks=num_locks,
        acquires_per_processor=acquires,
        think_cycles=think_cycles,
    )
    return simulate(config, workload)


def build_trace_system(
    protocol: ProtocolName,
    traces,
    num_processors: int = 4,
    bandwidth: float = 100_000.0,
    **overrides,
) -> MultiprocessorSystem:
    """Build (but do not run) a system driven by an explicit trace."""
    config = small_config(protocol, num_processors, bandwidth, **overrides)
    return MultiprocessorSystem(config, TraceWorkload(traces))


@pytest.fixture(params=ALL_PROTOCOLS, ids=[str(p) for p in ALL_PROTOCOLS])
def protocol(request) -> ProtocolName:
    """Parametrised fixture running a test once per protocol."""
    return request.param


@pytest.fixture(params=[_core.PURE, _core.COMPILED])
def backend(request) -> str:
    """Parametrised fixture running a test under each event-core backend.

    The ``compiled`` leg is skipped (with a reason) when the extension has
    not been built; the ``pure`` leg always runs, so the suite never goes
    green by silently testing one backend twice.  Systems built inside the
    test pick up the backend because :class:`repro.sim.Simulator` resolves
    it at construction time.
    """
    name = request.param
    if name == _core.COMPILED and not _core.compiled_available():
        pytest.skip(
            "compiled extension not built "
            "(build it with: python -m repro._core.build)"
        )
    with _core.use_backend(name):
        yield name


@pytest.fixture(name="build_trace_system")
def build_trace_system_fixture():
    """The :func:`build_trace_system` helper, exposed as a fixture.

    Test modules should request this instead of importing from ``conftest``
    directly, which keeps them collectable regardless of how pytest maps
    test files to packages.
    """
    return build_trace_system


@pytest.fixture(name="small_config")
def small_config_fixture():
    """The :func:`small_config` helper, exposed as a fixture."""
    return small_config


@pytest.fixture(name="run_microbenchmark")
def run_microbenchmark_fixture():
    """The :func:`run_microbenchmark` helper, exposed as a fixture."""
    return run_microbenchmark
