"""Endpoint link bandwidth, FIFO occupancy and utilization accounting."""

import pytest

from repro.errors import NetworkError
from repro.interconnect.link import EndpointLink, LinkPair


class TestEndpointLink:
    def test_occupancy_matches_size_over_bandwidth(self):
        link = EndpointLink("l", bytes_per_cycle=1.6)
        assert link.occupancy_cycles(72) == 45
        assert link.occupancy_cycles(8) == 5

    def test_broadcast_cost_factor_multiplies_occupancy(self):
        link = EndpointLink("l", bytes_per_cycle=1.6)
        assert link.occupancy_cycles(8, cost_factor=4.0) == 20

    def test_transmit_when_idle(self):
        link = EndpointLink("l", bytes_per_cycle=2.0)
        assert link.transmit(now=100, size_bytes=8) == 104
        assert link.busy_until == 104

    def test_transmit_queues_fifo_behind_busy_link(self):
        link = EndpointLink("l", bytes_per_cycle=2.0)
        first = link.transmit(now=0, size_bytes=72)   # 36 cycles -> done at 36
        second = link.transmit(now=10, size_bytes=8)  # waits, 4 cycles -> 40
        assert first == 36
        assert second == 40

    def test_busy_time_accounting(self):
        link = EndpointLink("l", bytes_per_cycle=2.0)
        link.transmit(now=0, size_bytes=20)    # busy 0-10
        link.transmit(now=50, size_bytes=20)   # busy 50-60
        assert link.busy_time_up_to(10) == 10
        assert link.busy_time_up_to(50) == 10
        assert link.busy_time_up_to(55) == 15
        assert link.busy_time_up_to(100) == 20

    def test_utilization_window(self):
        link = EndpointLink("l", bytes_per_cycle=1.0)
        link.transmit(now=0, size_bytes=50)
        assert link.utilization(0, 100) == pytest.approx(0.5)
        assert link.utilization(0, 50) == pytest.approx(1.0)
        assert link.utilization(50, 100) == pytest.approx(0.0)

    def test_counters(self):
        link = EndpointLink("l", bytes_per_cycle=1.0)
        link.transmit(now=0, size_bytes=8)
        link.transmit(now=0, size_bytes=72)
        assert link.messages_carried == 2
        assert link.bytes_carried == 80

    def test_validation(self):
        with pytest.raises(NetworkError):
            EndpointLink("l", bytes_per_cycle=0)
        link = EndpointLink("l", bytes_per_cycle=1.0)
        with pytest.raises(NetworkError):
            link.occupancy_cycles(0)
        with pytest.raises(NetworkError):
            link.occupancy_cycles(8, cost_factor=0.5)


class TestLinkPair:
    def test_utilization_is_bottleneck_direction(self):
        pair = LinkPair(0, bytes_per_cycle=1.0)
        pair.incoming.transmit(now=0, size_bytes=80)
        pair.outgoing.transmit(now=0, size_bytes=20)
        assert pair.utilization(0, 100) == pytest.approx(0.8)

    def test_idle_pair_has_zero_utilization(self):
        pair = LinkPair(3, bytes_per_cycle=1.0)
        assert pair.utilization(0, 100) == 0.0
