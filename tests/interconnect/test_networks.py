"""Ordered and unordered virtual networks."""

import pytest

from repro.common.config import SystemConfig
from repro.common.stats import StatsRegistry
from repro.errors import NetworkError
from repro.interconnect.message import DestinationUnit, Message, MessageType
from repro.interconnect.network import Interconnect
from repro.sim.scheduler import Scheduler


def make_interconnect(num_nodes=4, bandwidth=100_000.0, broadcast_cost_factor=1.0):
    config = SystemConfig(
        num_processors=num_nodes,
        bandwidth_mb_per_second=bandwidth,
        broadcast_cost_factor=broadcast_cost_factor,
    )
    scheduler = Scheduler()
    stats = StatsRegistry()
    interconnect = Interconnect(config, scheduler, stats)
    deliveries = {n: [] for n in range(num_nodes)}
    for node in range(num_nodes):
        interconnect.register_node(
            node,
            lambda msg, n=node: deliveries[n].append(("ordered", msg)),
            lambda msg, n=node: deliveries[n].append(("unordered", msg)),
        )
    return config, scheduler, interconnect, deliveries


def request(src, address=0, msg_type=MessageType.GETM, dest=None):
    return Message(
        msg_type=msg_type,
        src=src,
        dest=dest,
        address=address,
        size_bytes=8,
        requester=src,
        transaction_id=1,
    )


class TestOrderedNetwork:
    def test_broadcast_reaches_every_node(self):
        _, scheduler, interconnect, deliveries = make_interconnect()
        interconnect.broadcast(request(src=0))
        scheduler.run()
        assert all(len(deliveries[n]) == 1 for n in range(4))

    def test_multicast_reaches_only_recipients(self):
        _, scheduler, interconnect, deliveries = make_interconnect()
        interconnect.send_ordered(request(src=1), recipients={0, 1})
        scheduler.run()
        assert len(deliveries[0]) == 1
        assert len(deliveries[1]) == 1
        assert len(deliveries[2]) == 0

    def test_total_order_is_consistent_across_nodes(self):
        _, scheduler, interconnect, deliveries = make_interconnect(bandwidth=200.0)
        for src in range(4):
            interconnect.broadcast(request(src=src, address=src * 64))
        scheduler.run()
        orders = []
        for node in range(4):
            seqs = [msg.order_seq for kind, msg in deliveries[node] if kind == "ordered"]
            srcs = [msg.src for kind, msg in deliveries[node] if kind == "ordered"]
            assert seqs == sorted(seqs)
            orders.append(srcs)
        # Every node observes the same global order of requesters.
        assert all(order == orders[0] for order in orders)

    def test_order_seq_assigned_monotonically(self):
        _, scheduler, interconnect, deliveries = make_interconnect()
        interconnect.broadcast(request(src=0))
        interconnect.broadcast(request(src=1))
        scheduler.run()
        seqs = [msg.order_seq for _, msg in deliveries[2]]
        assert seqs == [0, 1]

    def test_fixed_traversal_latency(self):
        config, scheduler, interconnect, deliveries = make_interconnect()
        interconnect.broadcast(request(src=0))
        scheduler.run()
        # One out-link cycle + 50 traversal + one in-link cycle.
        assert scheduler.now == pytest.approx(config.latency.network_traversal + 2)

    def test_requires_recipients_and_known_nodes(self):
        _, scheduler, interconnect, _ = make_interconnect()
        with pytest.raises(NetworkError):
            interconnect.send_ordered(request(src=0), recipients=set())
        with pytest.raises(NetworkError):
            interconnect.send_ordered(request(src=0), recipients={99})

    def test_broadcast_cost_factor_slows_broadcasts_only(self):
        _, sched_plain, icn_plain, _ = make_interconnect(bandwidth=800.0)
        _, sched_costly, icn_costly, _ = make_interconnect(
            bandwidth=800.0, broadcast_cost_factor=4.0
        )
        icn_plain.broadcast(request(src=0))
        icn_costly.broadcast(request(src=0))
        sched_plain.run()
        sched_costly.run()
        assert sched_costly.now > sched_plain.now


class TestUnorderedNetwork:
    def test_point_to_point_delivery(self):
        _, scheduler, interconnect, deliveries = make_interconnect()
        message = request(src=0, dest=2, msg_type=MessageType.DATA)
        message.dest_unit = DestinationUnit.CACHE
        interconnect.send_unordered(message)
        scheduler.run()
        assert len(deliveries[2]) == 1
        kind, delivered = deliveries[2][0]
        assert kind == "unordered"
        assert delivered.msg_type is MessageType.DATA

    def test_requires_destination(self):
        _, _, interconnect, _ = make_interconnect()
        with pytest.raises(NetworkError):
            interconnect.send_unordered(request(src=0, dest=None))

    def test_mean_endpoint_utilization(self):
        _, scheduler, interconnect, _ = make_interconnect(bandwidth=800.0)
        interconnect.broadcast(request(src=0))
        scheduler.run()
        assert 0.0 < interconnect.mean_endpoint_utilization(0, scheduler.now) <= 1.0
