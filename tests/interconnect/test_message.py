"""Coherence message objects."""

from repro.interconnect.message import DestinationUnit, Message, MessageType


class TestMessage:
    def test_request_kind_unwraps_forwards(self):
        fwd = Message(
            msg_type=MessageType.FWD_GETM,
            src=0,
            address=64,
            size_bytes=8,
            requester=1,
        )
        assert fwd.request_kind is MessageType.GETM
        fwd_s = Message(
            msg_type=MessageType.FWD_GETS,
            src=0,
            address=64,
            size_bytes=8,
            requester=1,
        )
        assert fwd_s.request_kind is MessageType.GETS

    def test_request_kind_of_plain_request(self):
        msg = Message(
            msg_type=MessageType.GETS, src=0, address=0, size_bytes=8, requester=0
        )
        assert msg.request_kind is MessageType.GETS

    def test_copy_for_retry_increments_retry_count(self):
        original = Message(
            msg_type=MessageType.GETM,
            src=2,
            address=128,
            size_bytes=8,
            requester=2,
            transaction_id=7,
        )
        retry = original.copy_for_retry(frozenset({0, 2}), broadcast=False)
        assert retry.is_retry
        assert retry.retry_count == 1
        assert retry.recipients == frozenset({0, 2})
        assert retry.transaction_id == 7
        assert retry.msg_id != original.msg_id
        second = retry.copy_for_retry(frozenset({0, 1, 2, 3}), broadcast=True)
        assert second.retry_count == 2
        assert second.is_broadcast

    def test_message_ids_are_unique(self):
        a = Message(msg_type=MessageType.GETS, src=0, address=0, size_bytes=8, requester=0)
        b = Message(msg_type=MessageType.GETS, src=0, address=0, size_bytes=8, requester=0)
        assert a.msg_id != b.msg_id

    def test_default_destination_unit_is_cache(self):
        msg = Message(msg_type=MessageType.DATA, src=0, address=0, size_bytes=72, requester=1)
        assert msg.dest_unit is DestinationUnit.CACHE
