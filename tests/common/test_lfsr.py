"""Linear feedback shift register."""

import pytest

from repro.common.lfsr import LinearFeedbackShiftRegister
from repro.errors import ConfigurationError


class TestLfsr:
    def test_deterministic_for_same_seed(self):
        a = LinearFeedbackShiftRegister(seed=0x1234)
        b = LinearFeedbackShiftRegister(seed=0x1234)
        assert [a.next_int(8) for _ in range(20)] == [b.next_int(8) for _ in range(20)]

    def test_different_seeds_differ(self):
        a = LinearFeedbackShiftRegister(seed=0x1234)
        b = LinearFeedbackShiftRegister(seed=0x4321)
        assert [a.next_int(8) for _ in range(20)] != [b.next_int(8) for _ in range(20)]

    def test_values_fit_requested_width(self):
        lfsr = LinearFeedbackShiftRegister(seed=0xBEEF)
        for _ in range(200):
            value = lfsr.next_int(8)
            assert 0 <= value <= 255

    def test_eight_bit_register_has_maximal_period(self):
        lfsr = LinearFeedbackShiftRegister(seed=0x1D, width=8)
        assert lfsr.period_is_maximal()

    def test_rejects_zero_seed_and_bad_width(self):
        with pytest.raises(ConfigurationError):
            LinearFeedbackShiftRegister(seed=0)
        with pytest.raises(ConfigurationError):
            LinearFeedbackShiftRegister(seed=1, width=7)
        lfsr = LinearFeedbackShiftRegister(seed=1)
        with pytest.raises(ConfigurationError):
            lfsr.next_bits(0)

    def test_roughly_uniform_distribution(self):
        lfsr = LinearFeedbackShiftRegister(seed=0xACE1)
        samples = [lfsr.next_int(8) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert 110 < mean < 145  # uniform mean would be 127.5
