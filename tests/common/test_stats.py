"""Statistics primitives."""

import pytest

from repro.common.stats import Counter, Histogram, RunningMean, StatsRegistry


class TestCounter:
    def test_increment(self):
        counter = Counter("x")
        counter.increment()
        counter.increment(4)
        assert counter.count == 5

    def test_reset(self):
        counter = Counter("x")
        counter.increment(3)
        counter.reset()
        assert counter.count == 0


class TestRunningMean:
    def test_mean_and_extrema(self):
        mean = RunningMean("lat")
        mean.record_many([10, 20, 30])
        assert mean.mean == pytest.approx(20)
        assert mean.minimum == 10
        assert mean.maximum == 30
        assert mean.total == 60
        assert mean.count == 3

    def test_variance(self):
        mean = RunningMean("x")
        mean.record_many([2, 4, 4, 4, 5, 5, 7, 9])
        assert mean.variance == pytest.approx(4.0)
        assert mean.std_dev == pytest.approx(2.0)

    def test_empty_is_zero(self):
        mean = RunningMean("x")
        assert mean.mean == 0.0
        assert mean.variance == 0.0

    def test_reset(self):
        mean = RunningMean("x")
        mean.record(5)
        mean.reset()
        assert mean.count == 0


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("lat", bucket_width=10, bucket_count=5)
        for value in (1, 11, 12, 49, 1000):
            hist.record(value)
        buckets = hist.buckets
        assert buckets[0] == 1
        assert buckets[1] == 2
        assert buckets[4] == 1
        assert buckets[5] == 1  # overflow
        assert hist.count == 5

    def test_percentile(self):
        hist = Histogram("lat", bucket_width=10, bucket_count=10)
        for value in range(100):
            hist.record(value)
        assert hist.percentile(0.5) == pytest.approx(50, abs=10)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Histogram("x", bucket_width=0, bucket_count=5)
        with pytest.raises(ValueError):
            Histogram("x", bucket_width=1, bucket_count=0)


class TestStatsRegistry:
    def test_counters_and_means_are_singletons(self):
        registry = StatsRegistry()
        registry.counter("a").increment()
        registry.counter("a").increment()
        registry.running_mean("m").record(4)
        assert registry.counters()["a"] == 2
        assert registry.means()["m"] == 4

    def test_snapshot_merges_counters_and_means(self):
        registry = StatsRegistry()
        registry.counter("a").increment(3)
        registry.running_mean("m").record(2.5)
        snapshot = registry.snapshot()
        assert snapshot["a"] == 3.0
        assert snapshot["m"] == 2.5

    def test_reset(self):
        registry = StatsRegistry()
        registry.counter("a").increment(3)
        registry.running_mean("m").record(2.5)
        registry.reset()
        assert registry.counters()["a"] == 0
        assert registry.means()["m"] == 0.0
