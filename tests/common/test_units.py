"""Unit conversions."""

import pytest

from repro.common import units
from repro.errors import ConfigurationError


class TestBandwidthConversion:
    def test_1600_mb_per_second_is_1_point_6_bytes_per_cycle(self):
        assert units.mb_per_second_to_bytes_per_cycle(1600) == pytest.approx(1.6)

    def test_round_trip(self):
        for mb in (100, 800, 1600, 6400, 25600):
            bpc = units.mb_per_second_to_bytes_per_cycle(mb)
            assert units.bytes_per_cycle_to_mb_per_second(bpc) == pytest.approx(mb)

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            units.mb_per_second_to_bytes_per_cycle(0)
        with pytest.raises(ConfigurationError):
            units.bytes_per_cycle_to_mb_per_second(-1)


class TestTransferCycles:
    def test_data_message_at_1600_mbps(self):
        # 72 bytes at 1.6 bytes/cycle -> 45 cycles.
        assert units.transfer_cycles(72, 1.6) == 45

    def test_request_message_at_1600_mbps(self):
        assert units.transfer_cycles(8, 1.6) == 5

    def test_minimum_one_cycle(self):
        assert units.transfer_cycles(1, 100.0) == 1

    def test_rounds_up(self):
        assert units.transfer_cycles(10, 3.0) == 4

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            units.transfer_cycles(0, 1.0)
        with pytest.raises(ConfigurationError):
            units.transfer_cycles(8, 0.0)


class TestNanoseconds:
    def test_identity_at_one_ghz(self):
        assert units.nanoseconds_to_cycles(50) == 50
        assert units.nanoseconds_to_cycles(80) == 80

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            units.nanoseconds_to_cycles(-1)
