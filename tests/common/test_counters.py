"""Saturating counters used by the adaptive mechanism."""

import pytest

from repro.common.counters import SignedSaturatingCounter, UnsignedSaturatingCounter
from repro.errors import ConfigurationError


class TestSignedSaturatingCounter:
    def test_starts_at_zero(self):
        assert SignedSaturatingCounter(limit=10).value == 0

    def test_adds_and_subtracts(self):
        counter = SignedSaturatingCounter(limit=100)
        counter.add(5)
        counter.add(-8)
        assert counter.value == -3

    def test_saturates_high(self):
        counter = SignedSaturatingCounter(limit=10)
        counter.add(1000)
        assert counter.value == 10

    def test_saturates_low(self):
        counter = SignedSaturatingCounter(limit=10)
        counter.add(-1000)
        assert counter.value == -10

    def test_reset(self):
        counter = SignedSaturatingCounter(limit=10, initial=5)
        counter.reset()
        assert counter.value == 0

    def test_paper_example_from_figure_3(self):
        # 4 busy cycles (+1 each) and 3 idle cycles (-3 each) -> -5.
        counter = SignedSaturatingCounter(limit=100)
        for _ in range(4):
            counter.add(1)
        for _ in range(3):
            counter.add(-3)
        assert counter.value == -5

    def test_rejects_bad_limit_and_initial(self):
        with pytest.raises(ConfigurationError):
            SignedSaturatingCounter(limit=0)
        with pytest.raises(ConfigurationError):
            SignedSaturatingCounter(limit=5, initial=9)
        counter = SignedSaturatingCounter(limit=5)
        with pytest.raises(ConfigurationError):
            counter.reset(100)


class TestUnsignedSaturatingCounter:
    def test_eight_bit_maximum_is_255(self):
        assert UnsignedSaturatingCounter(bits=8).maximum == 255

    def test_increment_saturates(self):
        counter = UnsignedSaturatingCounter(bits=4)
        for _ in range(100):
            counter.increment()
        assert counter.value == 15

    def test_decrement_saturates_at_zero(self):
        counter = UnsignedSaturatingCounter(bits=4)
        counter.decrement(5)
        assert counter.value == 0

    def test_fraction_matches_paper_example(self):
        # "an 8-bit policy counter with the value of 100 implies that a request
        #  should be unicast with probability of 100/255 or 39%"
        counter = UnsignedSaturatingCounter(bits=8, initial=100)
        assert counter.fraction() == pytest.approx(100 / 255)
        assert round(counter.fraction(), 2) == pytest.approx(0.39)

    def test_reset_and_validation(self):
        counter = UnsignedSaturatingCounter(bits=8)
        counter.reset(42)
        assert counter.value == 42
        with pytest.raises(ConfigurationError):
            counter.reset(300)
        with pytest.raises(ConfigurationError):
            counter.increment(-1)
        with pytest.raises(ConfigurationError):
            counter.decrement(-1)
        with pytest.raises(ConfigurationError):
            UnsignedSaturatingCounter(bits=0)
