"""System configuration objects."""

import pytest

from repro.common.config import AdaptiveConfig, LatencyConfig, ProtocolName, SystemConfig
from repro.errors import ConfigurationError


class TestLatencyConfig:
    def test_paper_latencies(self):
        latency = LatencyConfig()
        assert latency.memory_fetch == 180
        assert latency.snooping_cache_to_cache == 125
        assert latency.directory_cache_to_cache == 255

    def test_cache_to_cache_is_about_70_percent_of_memory(self):
        latency = LatencyConfig()
        ratio = latency.snooping_cache_to_cache / latency.memory_fetch
        assert 0.65 < ratio < 0.75

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            LatencyConfig(network_traversal=-1)


class TestAdaptiveConfig:
    def test_defaults_match_paper(self):
        adaptive = AdaptiveConfig()
        assert adaptive.utilization_threshold == 0.75
        assert adaptive.sampling_interval == 512
        assert adaptive.policy_counter_bits == 8

    def test_counter_increments_for_75_percent(self):
        # 75% threshold -> +1 busy / -3 idle, as published.
        assert AdaptiveConfig(utilization_threshold=0.75).counter_increments() == (1, 3)

    def test_counter_increments_balance_at_threshold(self):
        for threshold in (0.55, 0.75, 0.95):
            busy, idle = AdaptiveConfig(
                utilization_threshold=threshold
            ).counter_increments()
            # At exactly the threshold the counter should not drift:
            # busy_fraction * busy == idle_fraction * idle.
            assert threshold * busy == pytest.approx((1 - threshold) * idle, rel=0.02)

    def test_full_swing_cycles_match_paper(self):
        adaptive = AdaptiveConfig()
        swing = adaptive.sampling_interval * ((1 << adaptive.policy_counter_bits) - 1)
        assert swing == 512 * 255  # ~130,000 cycles, as stated in Section 2.2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(utilization_threshold=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(utilization_threshold=1.5)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(sampling_interval=0)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(retry_buffer_size=0)


class TestSystemConfig:
    def test_defaults(self):
        config = SystemConfig()
        assert config.num_processors == 16
        assert config.protocol is ProtocolName.BASH
        assert config.bytes_per_cycle == pytest.approx(1.6)
        assert config.cache_capacity_blocks == 65536

    def test_protocol_coercion_from_string(self):
        config = SystemConfig(protocol="snooping")
        assert config.protocol is ProtocolName.SNOOPING

    def test_home_node_interleaving(self):
        config = SystemConfig(num_processors=4)
        homes = {config.home_node(i * 64) for i in range(8)}
        assert homes == {0, 1, 2, 3}
        assert config.home_node(0) == 0
        assert config.home_node(64) == 1

    def test_block_address_alignment(self):
        config = SystemConfig()
        assert config.block_address(130) == 128
        assert config.block_address(64) == 64

    def test_with_helpers(self):
        config = SystemConfig()
        assert config.with_protocol("directory").protocol is ProtocolName.DIRECTORY
        assert config.with_bandwidth(800).bandwidth_mb_per_second == 800
        # Original unchanged (frozen dataclass semantics).
        assert config.protocol is ProtocolName.BASH

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_processors=1)
        with pytest.raises(ConfigurationError):
            SystemConfig(bandwidth_mb_per_second=0)
        with pytest.raises(ConfigurationError):
            SystemConfig(broadcast_cost_factor=0.5)
        with pytest.raises(ConfigurationError):
            SystemConfig(cache_capacity_blocks=0)
