"""Discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.scheduler import Scheduler
from repro.sim.simulator import Simulator


class TestScheduler:
    def test_events_fire_in_time_order(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(30, lambda: fired.append("c"))
        scheduler.schedule_at(10, lambda: fired.append("a"))
        scheduler.schedule_at(20, lambda: fired.append("b"))
        scheduler.run()
        assert fired == ["a", "b", "c"]
        assert scheduler.now == 30

    def test_ties_break_by_insertion_order(self):
        scheduler = Scheduler()
        fired = []
        for name in "abcd":
            scheduler.schedule_at(5, lambda n=name: fired.append(n))
        scheduler.run()
        assert fired == ["a", "b", "c", "d"]

    def test_schedule_after_is_relative(self):
        scheduler = Scheduler()
        times = []
        scheduler.schedule_at(10, lambda: scheduler.schedule_after(5, lambda: times.append(scheduler.now)))
        scheduler.run()
        assert times == [15]

    def test_cannot_schedule_in_the_past(self):
        scheduler = Scheduler()
        scheduler.schedule_at(10, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.schedule_at(5, lambda: None)
        with pytest.raises(SimulationError):
            scheduler.schedule_after(-1, lambda: None)

    def test_cancelled_events_are_skipped(self):
        scheduler = Scheduler()
        fired = []
        event = scheduler.schedule_at(10, lambda: fired.append("x"))
        event.cancel()
        scheduler.run()
        assert fired == []

    def test_pending_excludes_cancelled_events(self):
        scheduler = Scheduler()
        events = [scheduler.schedule_at(10 + i, lambda: None) for i in range(4)]
        assert scheduler.pending == 4
        events[0].cancel()
        events[2].cancel()
        assert scheduler.pending == 2
        # Cancelling twice must not double-count.
        events[0].cancel()
        assert scheduler.pending == 2
        scheduler.run()
        assert scheduler.pending == 0
        assert scheduler.fired == 2

    def test_cancel_after_fire_does_not_corrupt_pending(self):
        scheduler = Scheduler()
        event = scheduler.schedule_at(5, lambda: None)
        scheduler.schedule_at(10, lambda: None)
        scheduler.run(until=7)
        event.cancel()  # already fired; must be a no-op
        assert scheduler.pending == 1
        scheduler.run()
        assert scheduler.pending == 0

    def test_drain_resets_cancellation_accounting(self):
        scheduler = Scheduler()
        events = [scheduler.schedule_at(10 + i, lambda: None) for i in range(3)]
        events[1].cancel()
        scheduler.drain()
        assert scheduler.pending == 0
        # Cancelling an event that was drained must not go negative.
        events[2].cancel()
        assert scheduler.pending == 0
        scheduler.schedule_at(50, lambda: None)
        assert scheduler.pending == 1

    def test_run_until_with_cancelled_head(self):
        # A cancelled event at the head of the queue must neither stop the
        # clock early nor let a later event leak past ``until``.
        scheduler = Scheduler()
        fired = []
        stale = scheduler.schedule_at(10, lambda: fired.append("stale"))
        scheduler.schedule_at(20, lambda: fired.append("live"))
        scheduler.schedule_at(90, lambda: fired.append("late"))
        stale.cancel()
        scheduler.run(until=50)
        assert fired == ["live"]
        assert scheduler.now == 50
        assert scheduler.pending == 1

    def test_run_until_cancelled_head_beyond_until(self):
        scheduler = Scheduler()
        fired = []
        stale = scheduler.schedule_at(80, lambda: fired.append("stale"))
        scheduler.schedule_at(90, lambda: fired.append("late"))
        stale.cancel()
        scheduler.run(until=50)
        assert fired == []
        assert scheduler.now == 50
        assert scheduler.pending == 1

    def test_mass_cancellation_triggers_compaction(self):
        scheduler = Scheduler()
        events = [scheduler.schedule_at(100 + i, lambda: None) for i in range(300)]
        survivors = events[::10]
        for index, event in enumerate(events):
            if index % 10:
                event.cancel()
        assert scheduler.pending == len(survivors)
        # Compaction must have physically removed most cancelled entries.
        queued = sum(len(bucket) for bucket in scheduler._buckets.values())
        assert queued < len(events)
        assert scheduler.run() == len(survivors)

    def test_compaction_from_inside_a_callback_is_safe(self):
        # A fired callback that mass-cancels (triggering compaction) must not
        # desynchronise the running loop from the queue: events scheduled
        # after the compaction still fire, nothing fires twice, and the
        # accounting stays exact.
        scheduler = Scheduler()
        fired = []
        victims = []

        def cancel_everything():
            for victim in victims:
                victim.cancel()
            scheduler.schedule_at(500, lambda: fired.append("after-compaction"))

        scheduler.schedule_at(1, cancel_everything)
        victims.extend(
            scheduler.schedule_at(100 + i, lambda i=i: fired.append(i))
            for i in range(200)
        )
        scheduler.schedule_at(400, lambda: fired.append("survivor"))
        scheduler.run()
        assert fired == ["survivor", "after-compaction"]
        assert scheduler.pending == 0
        assert scheduler.fired == 3
        scheduler.run()
        assert fired == ["survivor", "after-compaction"]

    def test_fast_path_interleaves_with_cancellable_events(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at_fast(10, lambda: fired.append("fast10"))
        scheduler.schedule_at(5, lambda: fired.append("event5"))
        scheduler.schedule_at_fast1(7, fired.append, "fast1-7")
        victim = scheduler.schedule_at(6, lambda: fired.append("cancelled"))
        victim.cancel()
        scheduler.run()
        assert fired == ["event5", "fast1-7", "fast10"]

    def test_drain_from_inside_a_callback_stops_the_run(self):
        # Simulator.finish() (which drains) can be called by a fired event;
        # the loop must stop cleanly: no later event fires — same-cycle
        # events included — and the queue ends empty.
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(5, lambda: (fired.append("drainer"), scheduler.drain()))
        scheduler.schedule_at(5, lambda: fired.append("same-cycle"))
        scheduler.schedule_at(9, lambda: fired.append("later"))
        scheduler.run()
        assert fired == ["drainer"]
        assert scheduler.pending == 0
        # The scheduler remains usable afterwards.
        scheduler.schedule_at(20, lambda: fired.append("fresh"))
        scheduler.run()
        assert fired == ["drainer", "fresh"]

    def test_drain_then_reschedule_same_cycle_from_callback(self):
        scheduler = Scheduler()
        fired = []

        def drain_and_rearm():
            scheduler.drain()
            scheduler.schedule_at_fast(scheduler.now, lambda: fired.append("rearmed"))

        scheduler.schedule_at_fast(5, drain_and_rearm)
        scheduler.schedule_at_fast(5, lambda: fired.append("victim"))
        scheduler.schedule_at_fast(9, lambda: fired.append("later"))
        scheduler.run()
        assert fired == ["rearmed"]
        assert scheduler.pending == 0

    def test_raising_callback_keeps_remaining_events_reachable(self):
        # The heap loop popped each entry before firing, so a raising
        # callback was exception-safe; the bucket loop must match: the
        # raising event is consumed, same-cycle survivors still fire on a
        # later run(), and new events at that cycle are not swallowed.
        scheduler = Scheduler()
        fired = []

        def boom():
            raise RuntimeError("boom")

        scheduler.schedule_at_fast(5, lambda: fired.append("first"))
        scheduler.schedule_at_fast(5, boom)
        scheduler.schedule_at_fast(5, lambda: fired.append("survivor"))
        scheduler.schedule_at_fast(9, lambda: fired.append("later"))
        with pytest.raises(RuntimeError):
            scheduler.run()
        assert fired == ["first"]
        assert scheduler.pending == 2
        scheduler.schedule_at_fast(5, lambda: fired.append("rescheduled"))
        scheduler.run()
        assert fired == ["first", "survivor", "rescheduled", "later"]
        assert scheduler.pending == 0

    def test_raising_single_event_is_consumed(self):
        scheduler = Scheduler()

        def boom():
            raise RuntimeError("boom")

        scheduler.schedule_at_fast(5, boom)
        with pytest.raises(RuntimeError):
            scheduler.run()
        assert scheduler.pending == 0
        assert scheduler.run() == 0  # nothing re-fires

    def test_run_until_bound(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(10, lambda: fired.append(10))
        scheduler.schedule_at(100, lambda: fired.append(100))
        scheduler.run(until=50)
        assert fired == [10]
        assert scheduler.now == 50
        assert scheduler.pending == 1

    def test_run_max_events(self):
        scheduler = Scheduler()
        for i in range(10):
            scheduler.schedule_at(i, lambda: None)
        assert scheduler.run(max_events=3) == 3
        assert scheduler.fired == 3

    def test_mass_cancel_from_stop_when_keeps_accounting_exact(self):
        # A stop_when predicate that cancels events can trigger compaction
        # while run() holds an alias to the bucket it is about to drain;
        # the accounting must not double-count those cancellations.
        scheduler = Scheduler()
        current = [scheduler.schedule_at(5, lambda: None) for _ in range(10)]
        later = [scheduler.schedule_at(100 + i, lambda: None) for i in range(70)]
        cancelled = []

        def cancel_everything():
            if not cancelled:
                for event in current + later:
                    event.cancel()
                cancelled.append(True)
            return False

        scheduler.run(stop_when=cancel_everything)
        assert scheduler.pending == 0
        assert scheduler._cancelled == 0
        assert scheduler.fired == 0

    def test_stop_when_predicate(self):
        scheduler = Scheduler()
        seen = []
        for i in range(10):
            scheduler.schedule_at(i, lambda i=i: seen.append(i))
        scheduler.run(stop_when=lambda: len(seen) >= 4)
        assert len(seen) == 4


class TestFireHooks:
    def test_multiple_hooks_each_see_every_event(self):
        scheduler = Scheduler()
        first, second = [], []
        scheduler.add_fire_hook(lambda t, label: first.append((t, label)))
        scheduler.add_fire_hook(lambda t, label: second.append((t, label)))
        scheduler.schedule_at_fast(5, lambda: None, "a")
        scheduler.schedule_at_fast(9, lambda: None, "b")
        scheduler.run()
        assert first == [(5, "a"), (9, "b")]
        assert second == first

    def test_remove_fire_hook_stops_delivery(self):
        scheduler = Scheduler()
        seen = []
        hook = lambda t, label: seen.append(label)
        scheduler.add_fire_hook(hook)
        scheduler.schedule_at_fast(1, lambda: None, "x")
        scheduler.run()
        scheduler.remove_fire_hook(hook)
        assert scheduler.on_fire is None
        scheduler.schedule_at_fast(2, lambda: None, "y")
        scheduler.run()
        assert seen == ["x"]

    def test_remove_unknown_hook_is_idempotent(self):
        scheduler = Scheduler()
        scheduler.remove_fire_hook(lambda t, label: None)
        assert scheduler.on_fire is None

    def test_directly_assigned_on_fire_is_adopted_as_first_hook(self):
        scheduler = Scheduler()
        order = []
        scheduler.on_fire = lambda t, label: order.append("legacy")
        scheduler.add_fire_hook(lambda t, label: order.append("added"))
        scheduler.schedule_at_fast(3, lambda: None, "e")
        scheduler.run()
        assert order == ["legacy", "added"]

    def test_single_hook_binds_without_fan_out_wrapper(self):
        scheduler = Scheduler()
        hook = lambda t, label: None
        scheduler.add_fire_hook(hook)
        assert scheduler.on_fire is hook

    def test_legacy_direct_assignment_can_be_removed(self):
        scheduler = Scheduler()
        hook = lambda t, label: None
        scheduler.on_fire = hook
        scheduler.remove_fire_hook(hook)
        assert scheduler.on_fire is None

    def test_direct_clear_after_adoption_is_not_resurrected(self):
        # A tracer assigned directly, adopted by add_fire_hook, then cleared
        # directly must stay gone when the added hook is removed — the legacy
        # surface is authoritative.
        scheduler = Scheduler()
        seen = []
        scheduler.on_fire = lambda t, label: seen.append(label)
        added = lambda t, label: None
        scheduler.add_fire_hook(added)
        scheduler.on_fire = None
        scheduler.remove_fire_hook(added)
        assert scheduler.on_fire is None
        scheduler.schedule_at_fast(1, lambda: None, "late")
        scheduler.run()
        assert seen == []

    def test_direct_reassignment_after_adoption_wins(self):
        scheduler = Scheduler()
        order = []
        scheduler.on_fire = lambda t, label: order.append("old")
        hook = lambda t, label: order.append("hook")
        scheduler.add_fire_hook(hook)
        scheduler.on_fire = lambda t, label: order.append("new")
        scheduler.add_fire_hook(hook)
        scheduler.schedule_at_fast(1, lambda: None, "e")
        scheduler.run()
        assert order == ["new", "hook"]

    def test_hooks_survive_reset(self):
        scheduler = Scheduler()
        seen = []
        scheduler.add_fire_hook(lambda t, label: seen.append(label))
        scheduler.schedule_at_fast(1, lambda: None, "before")
        scheduler.run()
        scheduler.reset()
        scheduler.schedule_at_fast(1, lambda: None, "after")
        scheduler.run()
        assert seen == ["before", "after"]


class TestSimulator:
    def test_run_until_quiescent(self):
        simulator = Simulator()
        fired = []
        simulator.scheduler.schedule_at(5, lambda: fired.append(1))
        simulator.run_until_quiescent()
        assert fired == [1]

    def test_quiescence_guard_raises(self):
        simulator = Simulator()

        def rearm():
            simulator.scheduler.schedule_after(1, rearm)

        simulator.scheduler.schedule_at(0, rearm)
        with pytest.raises(SimulationError):
            simulator.run_until_quiescent(max_events=100)

    def test_finish_blocks_further_runs(self):
        simulator = Simulator()
        simulator.finish()
        with pytest.raises(SimulationError):
            simulator.run()
