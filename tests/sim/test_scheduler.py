"""Discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.scheduler import Scheduler
from repro.sim.simulator import Simulator


class TestScheduler:
    def test_events_fire_in_time_order(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(30, lambda: fired.append("c"))
        scheduler.schedule_at(10, lambda: fired.append("a"))
        scheduler.schedule_at(20, lambda: fired.append("b"))
        scheduler.run()
        assert fired == ["a", "b", "c"]
        assert scheduler.now == 30

    def test_ties_break_by_insertion_order(self):
        scheduler = Scheduler()
        fired = []
        for name in "abcd":
            scheduler.schedule_at(5, lambda n=name: fired.append(n))
        scheduler.run()
        assert fired == ["a", "b", "c", "d"]

    def test_schedule_after_is_relative(self):
        scheduler = Scheduler()
        times = []
        scheduler.schedule_at(10, lambda: scheduler.schedule_after(5, lambda: times.append(scheduler.now)))
        scheduler.run()
        assert times == [15]

    def test_cannot_schedule_in_the_past(self):
        scheduler = Scheduler()
        scheduler.schedule_at(10, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.schedule_at(5, lambda: None)
        with pytest.raises(SimulationError):
            scheduler.schedule_after(-1, lambda: None)

    def test_cancelled_events_are_skipped(self):
        scheduler = Scheduler()
        fired = []
        event = scheduler.schedule_at(10, lambda: fired.append("x"))
        event.cancel()
        scheduler.run()
        assert fired == []

    def test_run_until_bound(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_at(10, lambda: fired.append(10))
        scheduler.schedule_at(100, lambda: fired.append(100))
        scheduler.run(until=50)
        assert fired == [10]
        assert scheduler.now == 50
        assert scheduler.pending == 1

    def test_run_max_events(self):
        scheduler = Scheduler()
        for i in range(10):
            scheduler.schedule_at(i, lambda: None)
        assert scheduler.run(max_events=3) == 3
        assert scheduler.fired == 3

    def test_stop_when_predicate(self):
        scheduler = Scheduler()
        seen = []
        for i in range(10):
            scheduler.schedule_at(i, lambda i=i: seen.append(i))
        scheduler.run(stop_when=lambda: len(seen) >= 4)
        assert len(seen) == 4


class TestSimulator:
    def test_run_until_quiescent(self):
        simulator = Simulator()
        fired = []
        simulator.scheduler.schedule_at(5, lambda: fired.append(1))
        simulator.run_until_quiescent()
        assert fired == [1]

    def test_quiescence_guard_raises(self):
        simulator = Simulator()

        def rearm():
            simulator.scheduler.schedule_after(1, rearm)

        simulator.scheduler.schedule_at(0, rearm)
        with pytest.raises(SimulationError):
            simulator.run_until_quiescent(max_events=100)

    def test_finish_blocks_further_runs(self):
        simulator = Simulator()
        simulator.finish()
        with pytest.raises(SimulationError):
            simulator.run()
