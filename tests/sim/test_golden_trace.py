"""Golden-trace determinism of the event core.

``tests/data/golden_traces.json`` holds the exact ``(time, label)`` sequence
of every fired event for one small fixed-seed run per protocol, captured on
the original (pre-optimisation) ``@dataclass``/heapq event core.  The
rebuilt ``__slots__``/tuple-heap core must reproduce those sequences bit for
bit: any change in event ordering, tie-breaking, label formatting or
scheduling structure shows up here as a diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.common.config import AdaptiveConfig, ProtocolName, SystemConfig
from repro.system.multiprocessor import MultiprocessorSystem
from repro.workloads.microbenchmark import LockingMicrobenchmark
from repro.workloads.patterns import (
    MigratoryWorkloadSpec,
    MixedTraceWorkloadSpec,
    ProducerConsumerWorkloadSpec,
    ReadMostlyWorkloadSpec,
)

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_traces.json"

#: Workload factories for the pattern-workload golden entries.  Each maps the
#: entry's ``workload.kind`` to the frozen spec idiom the scenario engine
#: uses, so the pinned schedules cover the exact code paths PR 4 ships.
PATTERN_SPECS = {
    "migratory": MigratoryWorkloadSpec,
    "producer_consumer": ProducerConsumerWorkloadSpec,
    "web_serving": ReadMostlyWorkloadSpec,
    "mixed_trace": MixedTraceWorkloadSpec,
}


def _load_golden():
    return json.loads(GOLDEN_PATH.read_text())


def _build_workload(cfg: dict):
    spec = cfg.get("workload")
    if spec is None:
        return LockingMicrobenchmark(
            num_locks=cfg["num_locks"],
            acquires_per_processor=cfg["acquires_per_processor"],
            think_cycles=0,
        )
    factory = PATTERN_SPECS[spec["kind"]](**spec.get("params", {}))
    return factory(cfg["random_seed"])


def _replay(name: str, cfg: dict):
    extra = {}
    if "cache_capacity_blocks" in cfg:
        extra["cache_capacity_blocks"] = cfg["cache_capacity_blocks"]
    config = SystemConfig(
        num_processors=cfg["num_processors"],
        protocol=ProtocolName(cfg.get("protocol", name)),
        bandwidth_mb_per_second=cfg["bandwidth_mb_per_second"],
        adaptive=AdaptiveConfig(
            sampling_interval=cfg["sampling_interval"],
            policy_counter_bits=cfg["policy_counter_bits"],
        ),
        random_seed=cfg["random_seed"],
        **extra,
    )
    system = MultiprocessorSystem(config, _build_workload(cfg))
    trace = []
    system.simulator.scheduler.on_fire = lambda time, label: trace.append(
        [time, label]
    )
    system.run()
    return system, trace


#: "directory_fastpath" squeezes the cache (2 blocks) so evictions force the
#: full home-unicast -> marker -> forward pipeline *including* writebacks and
#: PUT_ACK/PUT_NACK responses through the compiled dispatch tables.  The
#: pattern-workload entries pin the PR-4 scenario workloads' event schedules
#: under **every** protocol (the ``<pattern>_<protocol>`` entries fill in the
#: combinations the original one-protocol-each capture left out), so each
#: compiled delivery object replays each sharing pattern bit for bit.
@pytest.mark.parametrize(
    "name",
    [
        "snooping",
        "directory",
        "bash",
        "directory_fastpath",
        "migratory",
        "migratory_directory",
        "migratory_bash",
        "producer_consumer",
        "producer_consumer_snooping",
        "producer_consumer_bash",
        "web_serving",
        "web_serving_snooping",
        "web_serving_directory",
        "mixed_trace",
        "mixed_trace_snooping",
        "mixed_trace_bash",
    ],
)
def test_fired_event_sequence_matches_golden_trace(name, backend):
    golden = _load_golden()[name]
    system, trace = _replay(name, golden["config"])
    assert len(trace) == golden["fired"], (
        f"{name}: fired {len(trace)} events, golden trace has {golden['fired']}"
    )
    assert system.simulator.now == golden["final_time"]
    for index, (got, want) in enumerate(zip(trace, golden["events"])):
        assert got == want, (
            f"{name}: event #{index} diverged: got {got}, expected {want}"
        )


def test_replay_is_self_deterministic():
    """Two runs of the same seed produce the same trace (no hidden state)."""
    golden = _load_golden()["bash"]
    _, first = _replay("bash", golden["config"])
    _, second = _replay("bash", golden["config"])
    assert first == second
