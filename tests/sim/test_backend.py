"""Backend-selection contract of the compiled event core.

These tests pin the :mod:`repro._core` selection rules that everything else
(the ``backend`` test fixture, the interleaved benchmark A/B, the cache
key of sweep points) relies on:

* ``REPRO_BACKEND=pure`` must *bypass* the extension entirely — not just
  prefer the pure scheduler, but never import ``repro._core._cext`` — which
  only a subprocess can observe honestly;
* forcing ``compiled`` when the extension is missing fails loudly instead of
  silently falling back (a forced-compiled benchmark run that quietly ran
  pure would record nonsense);
* both backends produce bit-identical fired-event sequences.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import _core

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC = REPO_ROOT / "src"

needs_compiled = pytest.mark.skipif(
    not _core.compiled_available(),
    reason="compiled extension not built (python -m repro._core.build)",
)


def _run_python(code: str, env_overrides: dict) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env.pop(_core.ENV_VAR, None)
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestPureBypass:
    def test_pure_env_keeps_extension_out_of_sys_modules(self):
        """REPRO_BACKEND=pure must never import repro._core._cext.

        This is the regression test for the lazy factory design: the pure
        selection path must not even *attempt* the extension import, so a
        broken or ABI-mismatched build can never take down a pure run.
        """
        code = (
            "import sys, json\n"
            "from repro.sim import Simulator, Scheduler, backend_info\n"
            "sim = Simulator()\n"
            "sim.scheduler.schedule_after(1, lambda: None, label='t')\n"
            "fired = sim.run()\n"
            "print(json.dumps({\n"
            "    'info': backend_info(),\n"
            "    'fired': fired,\n"
            "    'is_pure_class': type(sim.scheduler) is Scheduler,\n"
            "    'cext_imported': 'repro._core._cext' in sys.modules,\n"
            "}))\n"
        )
        proc = _run_python(code, {_core.ENV_VAR: "pure"})
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["cext_imported"] is False
        assert payload["is_pure_class"] is True
        assert payload["fired"] == 1
        assert payload["info"]["name"] == "pure"
        assert payload["info"]["selected_by"] == "env"
        assert payload["info"]["compiled_loaded"] is False

    def test_invalid_backend_name_fails_loudly(self):
        code = "from repro.sim import Simulator; Simulator()"
        proc = _run_python(code, {_core.ENV_VAR: "turbo"})
        assert proc.returncode != 0
        assert "BackendError" in proc.stderr
        assert "turbo" in proc.stderr

    def test_forced_compiled_without_extension_raises(self, monkeypatch):
        """REPRO_BACKEND=compiled with no extension is an error, not a fallback."""

        def unavailable():
            raise ImportError("extension hidden for test")

        monkeypatch.setattr(_core, "_compiled_class", None)
        monkeypatch.setattr(_core, "_compiled_factory", unavailable)
        with pytest.raises(_core.BackendError, match="python -m repro._core.build"):
            _core.set_backend("compiled")

    def test_set_backend_rejects_unknown_names(self):
        with pytest.raises(_core.BackendError, match="turbo"):
            _core.set_backend("turbo")


class TestBackendInfo:
    def test_info_shape(self):
        info = _core.backend_info()
        assert set(info) == {
            "name",
            "requested",
            "selected_by",
            "env_var",
            "compiled_loaded",
            "compiled_version",
            "compiled_import_error",
            "components",
            "handler_selections",
        }
        assert info["name"] in ("pure", "compiled")
        assert info["env_var"] == "REPRO_BACKEND"
        assert set(info["components"]) == {"event_core", "handlers", "issue_chain"}
        if info["name"] == "pure":
            assert info["components"] == {
                "event_core": "pure",
                "handlers": "pure",
                "issue_chain": "pure",
            }
        else:
            assert info["components"]["event_core"] == "compiled"
            assert info["components"]["handlers"] in ("compiled", "unavailable")
            assert info["components"]["issue_chain"] in ("compiled", "unavailable")
        assert all(
            status in ("compiled", "declined")
            for status in info["handler_selections"].values()
        )

    def test_use_backend_restores_previous_selection(self):
        before = _core.backend_info()
        with _core.use_backend("pure") as active:
            assert active == "pure"
            assert _core.backend_info()["name"] == "pure"
        after = _core.backend_info()
        assert after["name"] == before["name"]
        assert after["selected_by"] == before["selected_by"]


@needs_compiled
class TestCompiledBackend:
    def test_compiled_scheduler_is_extension_subclass(self):
        ext = _core.load_extension()
        with _core.use_backend("compiled"):
            from repro.sim import Simulator

            sim = Simulator()
            assert isinstance(sim.scheduler, ext.SchedulerBase)
            assert _core.accelerator_for(sim.scheduler) is ext

    def test_accelerator_not_offered_to_pure_scheduler(self):
        from repro.sim.scheduler import Scheduler

        assert _core.accelerator_for(Scheduler()) is None

    def test_backends_produce_identical_traces(self):
        """Direct pure-vs-compiled A/B on one golden scenario, in process."""
        from .test_golden_trace import _load_golden, _replay

        golden = _load_golden()["snooping"]
        traces = {}
        for name in ("pure", "compiled"):
            with _core.use_backend(name):
                system, trace = _replay("snooping", golden["config"])
                traces[name] = (trace, system.simulator.now)
        assert traces["pure"] == traces["compiled"]

    def test_compiled_info_reports_version(self):
        with _core.use_backend("compiled"):
            info = _core.backend_info()
        assert info["compiled_loaded"] is True
        assert info["compiled_version"] == _core.load_extension().CORE_VERSION
