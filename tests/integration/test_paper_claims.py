"""Qualitative claims of the evaluation, checked end-to-end on small systems.

These are the headline behaviours of Figures 1, 5, 6, 8 and 9: Directory wins
when bandwidth is scarce, Snooping wins when bandwidth is plentiful, and BASH
tracks whichever is better (and is never far from the best static choice).
The systems here are smaller and the runs shorter than the paper's, so the
assertions are deliberately qualitative.
"""

import pytest

from repro.common.config import AdaptiveConfig, ProtocolName, SystemConfig
from repro.system.multiprocessor import simulate
from repro.workloads.microbenchmark import LockingMicrobenchmark

FAST_ADAPTIVE = AdaptiveConfig(sampling_interval=128, policy_counter_bits=6)


def run(protocol, bandwidth, processors=16, acquires=60, think=0, seed=1,
        broadcast_cost_factor=1.0):
    config = SystemConfig(
        num_processors=processors,
        protocol=protocol,
        bandwidth_mb_per_second=bandwidth,
        adaptive=FAST_ADAPTIVE,
        broadcast_cost_factor=broadcast_cost_factor,
        random_seed=seed,
    )
    workload = LockingMicrobenchmark(
        num_locks=512, acquires_per_processor=acquires, think_cycles=think
    )
    return simulate(config, workload)


LOW_BANDWIDTH = 200.0
HIGH_BANDWIDTH = 25_600.0


class TestBandwidthExtremes:
    def test_directory_beats_snooping_at_low_bandwidth(self):
        # At 16 processors the static crossover sits below the bandwidths we
        # can afford to sweep in CI, so (exactly as the paper does in Figure
        # 11) we raise the relative cost of broadcasting to emulate a larger
        # system and probe the bandwidth-starved regime.
        directory = run(ProtocolName.DIRECTORY, LOW_BANDWIDTH, broadcast_cost_factor=4.0)
        snooping = run(ProtocolName.SNOOPING, LOW_BANDWIDTH, broadcast_cost_factor=4.0)
        assert directory.performance > snooping.performance

    def test_snooping_beats_directory_at_high_bandwidth(self):
        snooping = run(ProtocolName.SNOOPING, HIGH_BANDWIDTH)
        directory = run(ProtocolName.DIRECTORY, HIGH_BANDWIDTH)
        assert snooping.performance > directory.performance

    def test_bash_tracks_directory_at_low_bandwidth(self):
        bash = run(ProtocolName.BASH, LOW_BANDWIDTH, acquires=90, broadcast_cost_factor=4.0)
        directory = run(ProtocolName.DIRECTORY, LOW_BANDWIDTH, acquires=90, broadcast_cost_factor=4.0)
        snooping = run(ProtocolName.SNOOPING, LOW_BANDWIDTH, acquires=90, broadcast_cost_factor=4.0)
        assert bash.performance > snooping.performance
        # Within ~25% of Directory (the paper reports within ~10% with much
        # longer runs for the adaptation to settle).
        assert bash.performance > 0.75 * directory.performance

    def test_bash_tracks_snooping_at_high_bandwidth(self):
        bash = run(ProtocolName.BASH, HIGH_BANDWIDTH)
        snooping = run(ProtocolName.SNOOPING, HIGH_BANDWIDTH)
        assert bash.performance > 0.9 * snooping.performance

    def test_bash_mostly_unicasts_when_bandwidth_is_scarce(self):
        bash = run(ProtocolName.BASH, LOW_BANDWIDTH, acquires=90, broadcast_cost_factor=4.0)
        assert bash.broadcast_fraction < 0.5

    def test_bash_mostly_broadcasts_when_bandwidth_is_plentiful(self):
        bash = run(ProtocolName.BASH, HIGH_BANDWIDTH)
        assert bash.broadcast_fraction > 0.8


class TestUtilizationClaims:
    def test_snooping_saturates_its_links_at_low_bandwidth(self):
        snooping = run(ProtocolName.SNOOPING, LOW_BANDWIDTH, broadcast_cost_factor=4.0)
        assert snooping.mean_link_utilization > 0.85

    def test_directory_underutilizes_plentiful_bandwidth(self):
        directory = run(ProtocolName.DIRECTORY, HIGH_BANDWIDTH)
        assert directory.mean_link_utilization < 0.3

    def test_snooping_uses_more_bandwidth_than_directory_everywhere(self):
        for bandwidth in (LOW_BANDWIDTH, 1600.0, HIGH_BANDWIDTH):
            snooping = run(ProtocolName.SNOOPING, bandwidth, acquires=40)
            directory = run(ProtocolName.DIRECTORY, bandwidth, acquires=40)
            assert snooping.mean_link_utilization > directory.mean_link_utilization


class TestLatencyAndIntensityClaims:
    def test_miss_latency_grows_when_bandwidth_shrinks(self):
        for protocol in (ProtocolName.SNOOPING, ProtocolName.DIRECTORY, ProtocolName.BASH):
            scarce = run(protocol, LOW_BANDWIDTH, acquires=40)
            plentiful = run(protocol, HIGH_BANDWIDTH, acquires=40)
            assert scarce.mean_miss_latency > plentiful.mean_miss_latency

    def test_think_time_relieves_snooping_congestion(self):
        # Figure 9: decreasing workload intensity (more think time) shrinks the
        # average miss latency of the bandwidth-hungry protocol.
        busy = run(ProtocolName.SNOOPING, 800.0, acquires=40, think=0)
        relaxed = run(ProtocolName.SNOOPING, 800.0, acquires=40, think=800)
        assert relaxed.mean_miss_latency < busy.mean_miss_latency

    def test_broadcast_cost_factor_hurts_snooping_more_than_directory(self):
        snooping_1x = run(ProtocolName.SNOOPING, 1600.0, acquires=40)
        snooping_4x = run(ProtocolName.SNOOPING, 1600.0, acquires=40, broadcast_cost_factor=4.0)
        directory_1x = run(ProtocolName.DIRECTORY, 1600.0, acquires=40)
        directory_4x = run(ProtocolName.DIRECTORY, 1600.0, acquires=40, broadcast_cost_factor=4.0)
        snooping_loss = snooping_4x.performance / snooping_1x.performance
        directory_loss = directory_4x.performance / directory_1x.performance
        assert snooping_loss < directory_loss


class TestScalingClaims:
    def test_directory_scales_better_than_snooping(self):
        # Figure 8: with fixed per-processor bandwidth, Snooping's per-processor
        # performance degrades faster than Directory's as the system grows.
        # The 4x broadcast cost stands in for the larger systems the paper
        # sweeps (its Figure 8 goes to 256 processors).
        small_snoop = run(ProtocolName.SNOOPING, 1600.0, processors=4, acquires=40,
                          broadcast_cost_factor=4.0)
        big_snoop = run(ProtocolName.SNOOPING, 1600.0, processors=32, acquires=40,
                        broadcast_cost_factor=4.0)
        small_dir = run(ProtocolName.DIRECTORY, 1600.0, processors=4, acquires=40,
                        broadcast_cost_factor=4.0)
        big_dir = run(ProtocolName.DIRECTORY, 1600.0, processors=32, acquires=40,
                      broadcast_cost_factor=4.0)
        snoop_scaling = (big_snoop.performance / 32) / (small_snoop.performance / 4)
        dir_scaling = (big_dir.performance / 32) / (small_dir.performance / 4)
        assert dir_scaling > snoop_scaling
        assert snoop_scaling < 0.75  # snooping visibly degrades
        assert dir_scaling > 0.7     # directory stays nearly flat
