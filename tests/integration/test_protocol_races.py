"""Racing-transaction scenarios run across every protocol.

These integration tests aim the simulator at the corner cases Section 3
discusses: racing GETM requests, writebacks racing with ownership transfers,
heavily false-shared blocks, and (for BASH) the window of vulnerability
between an insufficient request and its retry.  After every run the coherence
invariants and value-consistency checks must hold.
"""

import pytest

from repro.common.config import ProtocolName
from repro.verification.invariants import check_invariants
from repro.verification.random_tester import RandomProtocolTester
from repro.workloads.base import MemoryOperation
from repro.workloads.microbenchmark import LockingMicrobenchmark
from repro.system.multiprocessor import MultiprocessorSystem
from repro.workloads.trace import TraceWorkload

# The shared helpers arrive via the ``build_trace_system`` and
# ``small_config`` fixtures defined in the top-level tests/conftest.py.


class TestRacingWriters:
    def test_simultaneous_writers_serialise(self, protocol, build_trace_system):
        # Every processor stores to the same block at the same time.
        ops = {
            node: [MemoryOperation(address=192, is_write=True)] for node in range(4)
        }
        system = build_trace_system(protocol, ops, bandwidth=800.0)
        system.run()
        owners = [
            node.node_id
            for node in system.nodes
            if node.cache_controller.state_of(192).is_owner
        ]
        assert len(owners) == 1
        check_invariants(system).raise_on_violation()

    def test_simultaneous_readers_after_writer(self, protocol, build_trace_system):
        ops = {0: [MemoryOperation(address=64, is_write=True)]}
        ops.update(
            {
                node: [MemoryOperation(address=64, is_write=False, think_cycles=1000)]
                for node in range(1, 4)
            }
        )
        system = build_trace_system(protocol, ops, bandwidth=800.0)
        system.run()
        tokens = {
            node.cache_controller.blocks.lookup(64).data_token
            for node in system.nodes
            if node.cache_controller.state_of(64).has_valid_data
        }
        assert len(tokens) == 1
        check_invariants(system).raise_on_violation()

    def test_interleaved_read_write_chains(self, protocol, build_trace_system):
        ops = {
            0: [MemoryOperation(address=128, is_write=True),
                MemoryOperation(address=128, is_write=False, think_cycles=900)],
            1: [MemoryOperation(address=128, is_write=True, think_cycles=300)],
            2: [MemoryOperation(address=128, is_write=True, think_cycles=600)],
            3: [MemoryOperation(address=128, is_write=False, think_cycles=1200)],
        }
        system = build_trace_system(protocol, ops, bandwidth=400.0)
        system.run()
        check_invariants(system).raise_on_violation()


class TestFalseSharingStress:
    @pytest.mark.parametrize("bandwidth", [400.0, 3200.0])
    def test_contended_microbenchmark_stays_coherent(self, protocol, bandwidth, small_config):
        config = small_config(protocol, num_processors=6, bandwidth=bandwidth)
        workload = LockingMicrobenchmark(num_locks=4, acquires_per_processor=25)
        system = MultiprocessorSystem(config, workload)
        system.run()
        check_invariants(system).raise_on_violation()

    def test_random_tester_with_two_hot_blocks(self, protocol):
        tester = RandomProtocolTester(
            protocol, num_processors=5, num_blocks=2, operations=250, seed=23,
            bandwidth_mb_per_second=300.0,
        )
        result = tester.run()
        result.raise_on_failure()


class TestBashWindowOfVulnerability:
    def test_unicast_racing_with_broadcasts(self, build_trace_system):
        # P1 unicasts a GETM for a block owned by P0 while P2 and P3 broadcast
        # their own GETMs for the same block: the retry of P1's request lands
        # in the window after the broadcasts changed the owner, forcing the
        # memory controller to retry again with an updated recipient set.
        ops = {
            0: [MemoryOperation(address=192, is_write=True)],
            1: [MemoryOperation(address=192, is_write=True, think_cycles=1200)],
            2: [MemoryOperation(address=192, is_write=True, think_cycles=1250)],
            3: [MemoryOperation(address=192, is_write=True, think_cycles=1300)],
        }
        system = build_trace_system(ProtocolName.BASH, ops, bandwidth=400.0)
        # P1 unicasts; P2 and P3 broadcast.
        system.nodes[1].cache_controller.adaptive.should_broadcast = lambda: False
        system.run()
        owners = [
            node.node_id
            for node in system.nodes
            if node.cache_controller.state_of(192).is_owner
        ]
        assert len(owners) == 1
        check_invariants(system).raise_on_violation()

    def test_writeback_racing_with_unicast_request(self, build_trace_system):
        ops = {
            0: [MemoryOperation(address=192, is_write=True)],
            1: [MemoryOperation(address=192, is_write=True, think_cycles=1500)],
            2: [],
            3: [],
        }
        system = build_trace_system(ProtocolName.BASH, ops, bandwidth=400.0)
        system.nodes[1].cache_controller.adaptive.should_broadcast = lambda: False
        system.run(max_cycles=900)
        cache0 = system.nodes[0].cache_controller
        if cache0.state_of(192).is_owner and not cache0.has_outstanding(192):
            cache0.issue_writeback(192)
        system.simulator.run(until=3_000_000)
        check_invariants(system).raise_on_violation()
        assert system.nodes[1].cache_controller.state_of(192).is_owner
