"""Invariant checking, value consistency, and the random protocol tester."""

import pytest

from repro.coherence.state import MOSIState
from repro.common.config import ProtocolName
from repro.errors import VerificationError
from repro.experiments.batch import BatchRunner
from repro.verification.consistency import ConsistencyChecker
from repro.verification.invariants import check_invariants
from repro.verification.random_tester import (
    RandomProtocolTester,
    run_random_campaign,
)
from repro.workloads.base import MemoryOperation
from repro.workloads.trace import TraceWorkload

from ..conftest import build_trace_system


class TestInvariantChecker:
    def test_clean_system_passes(self, protocol):
        ops = {
            0: [MemoryOperation(address=0, is_write=True)],
            1: [MemoryOperation(address=0, is_write=False, think_cycles=1500)],
            2: [MemoryOperation(address=64, is_write=True)],
            3: [],
        }
        system = build_trace_system(protocol, ops)
        system.run()
        report = check_invariants(system)
        assert report.ok, report.violations
        assert report.blocks_checked >= 2

    def test_detects_double_owner(self):
        ops = {0: [MemoryOperation(address=0, is_write=True)], 1: [], 2: [], 3: []}
        system = build_trace_system(ProtocolName.SNOOPING, ops)
        system.run()
        # Corrupt the system: force a second cache to claim ownership.
        rogue = system.nodes[2].cache_controller.blocks.lookup(0)
        rogue.state = MOSIState.MODIFIED
        report = check_invariants(system)
        assert not report.ok
        with pytest.raises(VerificationError):
            report.raise_on_violation()

    def test_detects_directory_owner_mismatch(self):
        ops = {0: [MemoryOperation(address=0, is_write=True)], 1: [], 2: [], 3: []}
        system = build_trace_system(ProtocolName.DIRECTORY, ops)
        system.run()
        # Corrupt the owner's cache: silently drop the modified block.
        system.nodes[0].cache_controller.blocks.lookup(0).invalidate()
        report = check_invariants(system)
        assert not report.ok

    def test_detects_stale_sharer_token(self):
        ops = {
            0: [MemoryOperation(address=0, is_write=True)],
            1: [MemoryOperation(address=0, is_write=False, think_cycles=1500)],
            2: [],
            3: [],
        }
        system = build_trace_system(ProtocolName.SNOOPING, ops)
        system.run()
        system.nodes[1].cache_controller.blocks.lookup(0).data_token = 424242
        report = check_invariants(system)
        assert not report.ok


class TestConsistencyChecker:
    def test_reads_must_see_latest_earlier_write(self):
        checker = ConsistencyChecker()
        checker.record_write(node=0, address=0, token=1, order_seq=1, time=10)
        checker.record_write(node=1, address=0, token=2, order_seq=5, time=20)
        checker.record_read(node=2, address=0, token=2, order_seq=7, time=30)
        assert checker.check() == []

    def test_stale_read_is_flagged(self):
        checker = ConsistencyChecker()
        checker.record_write(node=0, address=0, token=1, order_seq=1, time=10)
        checker.record_write(node=1, address=0, token=2, order_seq=5, time=20)
        checker.record_read(node=2, address=0, token=1, order_seq=9, time=30)
        violations = checker.check()
        assert len(violations) == 1
        with pytest.raises(VerificationError):
            checker.raise_on_violation()

    def test_read_before_any_write_sees_initial_value(self):
        checker = ConsistencyChecker()
        checker.record_read(node=0, address=0, token=0, order_seq=1, time=5)
        checker.record_write(node=1, address=0, token=3, order_seq=4, time=20)
        assert checker.check() == []

    def test_counts(self):
        checker = ConsistencyChecker()
        checker.record_write(0, 0, 1, 1, 1)
        checker.record_read(1, 0, 1, 2, 2)
        assert checker.writes == 1
        assert checker.reads == 1


class TestRandomTester:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_campaign_passes_for_every_protocol(self, protocol, seed):
        tester = RandomProtocolTester(
            protocol, num_processors=4, num_blocks=3, operations=200, seed=seed
        )
        result = tester.run()
        assert result.operations_completed == result.operations_issued
        result.raise_on_failure()
        assert result.ok

    def test_bash_campaign_exercises_retries(self):
        tester = RandomProtocolTester(
            ProtocolName.BASH,
            num_processors=4,
            num_blocks=2,
            operations=300,
            seed=5,
            bandwidth_mb_per_second=1600.0,
        )
        # Force a unicast-heavy mix so insufficiency and retries are common.
        for node in tester.system.nodes:
            node.cache_controller.adaptive.policy_counter.reset(200)
        result = tester.run()
        result.raise_on_failure()
        assert result.retries > 0

    def test_false_sharing_campaign_with_low_bandwidth(self, protocol):
        tester = RandomProtocolTester(
            protocol,
            num_processors=6,
            num_blocks=2,
            operations=150,
            seed=11,
            bandwidth_mb_per_second=200.0,
        )
        result = tester.run()
        result.raise_on_failure()

    def test_midrun_monitor_runs_by_default(self, protocol):
        tester = RandomProtocolTester(
            protocol, num_processors=4, num_blocks=3, operations=120, seed=3
        )
        result = tester.run()
        result.raise_on_failure()
        assert result.midrun_report is not None
        assert result.midrun_report.blocks_checked >= result.operations_completed


class TestOutstandingConcurrency:
    """The paper's races need multiple outstanding misses per node."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_two_outstanding_ops_pass_every_check(self, protocol, seed):
        tester = RandomProtocolTester(
            protocol,
            num_processors=4,
            num_blocks=4,
            operations=250,
            seed=seed,
            max_outstanding_per_node=2,
        )
        result = tester.run()
        result.raise_on_failure()
        assert result.ok
        # The concurrency must actually have happened, not just been allowed.
        assert result.max_outstanding_observed >= 2

    def test_four_outstanding_with_low_bandwidth(self, protocol):
        tester = RandomProtocolTester(
            protocol,
            num_processors=4,
            num_blocks=6,
            operations=200,
            seed=7,
            bandwidth_mb_per_second=200.0,
            max_outstanding_per_node=4,
        )
        result = tester.run()
        result.raise_on_failure()
        assert result.max_outstanding_observed >= 3

    def test_blocking_default_never_exceeds_one(self, protocol):
        tester = RandomProtocolTester(
            protocol, num_processors=4, num_blocks=3, operations=100, seed=5
        )
        result = tester.run()
        result.raise_on_failure()
        assert result.max_outstanding_observed == 1

    def test_campaign_helper_threads_the_new_parameters(self):
        results = run_random_campaign(
            ProtocolName.DIRECTORY,
            seeds=range(2),
            operations=120,
            bandwidth_mb_per_second=800.0,
            max_outstanding_per_node=2,
        )
        assert len(results) == 2
        for result in results:
            result.raise_on_failure()
            assert result.max_outstanding_observed >= 2

    def test_reset_reuse_through_acquire(self):
        runner = BatchRunner()
        first = RandomProtocolTester(
            ProtocolName.SNOOPING, operations=100, seed=2, acquire=runner.acquire
        ).run()
        second = RandomProtocolTester(
            ProtocolName.SNOOPING, operations=100, seed=2, acquire=runner.acquire
        ).run()
        first.raise_on_failure()
        second.raise_on_failure()
        assert runner.systems_built == 1
        assert first.operations_issued == second.operations_issued
        assert first.reads == second.reads and first.writes == second.writes
