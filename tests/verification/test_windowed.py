"""Windowed differential checking: prefix equivalence, carry, campaigns."""

import pytest

from repro.common.config import ProtocolName
from repro.errors import VerificationError
from repro.verification.campaign import (
    QUICK_CAMPAIGN,
    VerificationTask,
    WINDOWED,
    run_task,
)
from repro.verification.differential import (
    RACY,
    STRICT,
    MemoryTrace,
    ReplayConfig,
    ReplayResult,
    TraceOp,
    WRITE,
    generate_trace,
)
from repro.verification.invariants import InvariantReport
from repro.verification.windowed import (
    WindowedTraceSource,
    apply_window_writes,
    expected_reads_with_carry,
    run_windowed_differential,
    _compare_window,
)


class TestWindowedTraceSource:
    @pytest.mark.parametrize("mode", [RACY, STRICT])
    def test_window_concatenation_equals_monolithic_trace(self, mode):
        seed, window_ops, windows = 13, 25, 4
        source = WindowedTraceSource(seed, mode=mode)
        chunked = []
        for _ in range(windows):
            chunked.extend(source.next_window(window_ops).ops)
        monolithic = generate_trace(
            seed, operations=window_ops * windows, mode=mode
        )
        assert tuple(chunked) == monolithic.ops
        assert source.generated == window_ops * windows

    def test_tokens_stay_unique_across_windows(self):
        source = WindowedTraceSource(5)
        tokens = []
        for _ in range(6):
            tokens.extend(
                op.token
                for op in source.next_window(30).ops
                if op.kind == WRITE
            )
        assert len(tokens) == len(set(tokens))
        assert tokens == sorted(tokens)

    def test_unknown_mode_rejected(self):
        with pytest.raises(VerificationError):
            WindowedTraceSource(1, mode="chaotic")


class TestCarryModel:
    def _trace(self, ops):
        return MemoryTrace(
            num_processors=2,
            num_blocks=2,
            mode=STRICT,
            seed=0,
            single_writer=False,
            ops=tuple(ops),
        )

    def test_apply_window_writes_threads_history(self):
        trace = self._trace(
            [TraceOp(0, 0, WRITE, 7, 1), TraceOp(1, 1, "read", 0, 1)]
        )
        carry = apply_window_writes(trace, {0: 3, 1: 4})
        assert carry == {0: 7, 1: 4}

    def test_expected_reads_start_from_the_carry(self):
        trace = self._trace(
            [
                TraceOp(0, 1, "read", 0, 1),  # sees carried value
                TraceOp(0, 0, WRITE, 9, 1),
                TraceOp(1, 0, "read", 0, 1),  # sees this window's write
            ]
        )
        expected = expected_reads_with_carry(trace, {0: 3, 1: 4})
        assert expected == {0: 4, 2: 9}

    def test_expected_reads_default_to_zero_without_carry(self):
        trace = self._trace([TraceOp(0, 0, "read", 0, 1)])
        assert expected_reads_with_carry(trace, {}) == {0: 0}


def _fake_result(protocol, final_image, operations=2):
    return ReplayResult(
        protocol=protocol,
        operations=operations,
        completed=operations,
        cycles=100,
        hits=0,
        silent_stores=0,
        skipped_writebacks=0,
        evictions=0,
        retries=0,
        nacks=0,
        observations={0: [None] * operations, 1: [None] * operations},
        final_image=final_image,
        consistency_violations=[],
        midrun_report=None,
        final_report=InvariantReport(),
    )


class TestCompareWindow:
    def _trace(self):
        return MemoryTrace(
            num_processors=2,
            num_blocks=2,
            mode=RACY,
            seed=0,
            single_writer=True,
            ops=(TraceOp(0, 0, WRITE, 5, 1), TraceOp(1, 1, "read", 0, 1)),
        )

    def test_agreement_with_carry_passes(self):
        image = {0: 5, 1: 4}  # block 1 keeps the carried token
        failures = _compare_window(
            self._trace(),
            {
                ProtocolName.SNOOPING: _fake_result(
                    ProtocolName.SNOOPING, image
                ),
                ProtocolName.BASH: _fake_result(ProtocolName.BASH, image),
            },
            {0: 3, 1: 4},
        )
        assert failures == []

    def test_losing_a_carried_value_is_reported(self):
        # a protocol that "forgets" block 1's carried token diverges from
        # the model even though this window never wrote block 1
        failures = _compare_window(
            self._trace(),
            {
                ProtocolName.BASH: _fake_result(
                    ProtocolName.BASH, {0: 5, 1: 0}
                )
            },
            {0: 3, 1: 4},
        )
        assert any("carried model predicts 4" in line for line in failures)

    def test_cross_protocol_divergence_is_reported(self):
        failures = _compare_window(
            self._trace(),
            {
                ProtocolName.SNOOPING: _fake_result(
                    ProtocolName.SNOOPING, {0: 5, 1: 4}
                ),
                ProtocolName.BASH: _fake_result(
                    ProtocolName.BASH, {0: 5, 1: 7}
                ),
            },
            {0: 3, 1: 4},
        )
        assert any("final image diverges on block 1" in f for f in failures)


class TestRunWindowedDifferential:
    @pytest.mark.parametrize("mode", [RACY, STRICT])
    def test_clean_run_across_live_windows(self, mode):
        result = run_windowed_differential(
            seed=0, windows=3, window_ops=30, mode=mode
        )
        assert result.ok, result.failures
        assert result.windows_completed == 3
        assert result.operations == 90
        # bounded-memory contract: one window resident, never the campaign
        assert result.max_resident_ops == 30
        # systems stayed alive: every protocol accumulated cycles
        assert set(result.cycles) == {str(p) for p in result.protocols}
        assert all(cycles > 0 for cycles in result.cycles.values())
        result.raise_on_failure()  # no-op when ok

    def test_final_tokens_match_a_monolithic_model(self):
        result = run_windowed_differential(seed=2, windows=4, window_ops=25)
        monolithic = generate_trace(2, operations=100)
        assert result.final_tokens == monolithic.predicted_final_tokens()

    def test_parameter_validation(self):
        with pytest.raises(VerificationError):
            run_windowed_differential(seed=0, windows=0)
        with pytest.raises(VerificationError):
            run_windowed_differential(seed=0, window_ops=0)

    def test_result_round_trips_to_json(self):
        import json

        result = run_windowed_differential(
            seed=1,
            windows=2,
            window_ops=20,
            protocols=(ProtocolName.SNOOPING, ProtocolName.DIRECTORY),
        )
        payload = json.loads(json.dumps(result.to_jsonable()))
        assert payload["ok"] is True
        assert payload["windows_completed"] == 2
        assert payload["operations"] == 40
        assert payload["protocols"] == ["snooping", "directory"]


class TestWindowedCampaignIntegration:
    def test_quick_campaign_schedules_windowed_tasks(self):
        tasks = QUICK_CAMPAIGN.tasks()
        windowed = [task for task in tasks if task.kind == WINDOWED]
        assert len(windowed) == 4  # 2 seeds x 2 modes
        assert {task.mode for task in windowed} == {RACY, STRICT}
        for task in windowed:
            assert task.windows == QUICK_CAMPAIGN.windowed_windows
            assert "windowed[" in task.describe()
            assert f"windows={task.windows}" in task.describe()

    def test_run_task_executes_a_windowed_unit(self):
        task = VerificationTask(
            kind=WINDOWED,
            seed=0,
            mode=RACY,
            operations=20,
            windows=2,
        )
        outcome = run_task(task)
        assert outcome.ok, outcome.failures
        # operations accumulate per protocol, like differential tasks
        assert outcome.operations == 40 * len(task.protocols)
        assert outcome.protocol_runs == len(task.protocols)

    def test_legacy_task_payload_defaults_to_one_window(self):
        task = VerificationTask(kind=WINDOWED, seed=3, windows=5)
        payload = task.to_jsonable()
        clone = VerificationTask.from_jsonable(payload)
        assert clone == task
        payload.pop("windows")  # artifact written before windowed mode
        legacy = VerificationTask.from_jsonable(payload)
        assert legacy.windows == 1
        assert legacy.seed == 3
