"""The verification campaign engine: fan-out, shrinking, artifacts, CLI glue."""

import json

import pytest

from repro.coherence.state import MOSIState
from repro.errors import VerificationError
from repro.experiments.batch import BatchRunner
from repro.interconnect.message import MessageType
from repro.verification.campaign import (
    CampaignSpec,
    DEEP_CAMPAIGN,
    QUICK_CAMPAIGN,
    VerificationCampaign,
    VerificationTask,
    differential_failure_predicate,
    load_artifact,
    replay_artifact,
    run_campaign,
    run_campaign_tasks,
    run_task,
    shrink_trace,
    write_artifact,
)

#: A deliberately tiny campaign so unit tests stay fast.
TINY = CampaignSpec(
    name="tiny",
    seeds=(0, 1),
    modes=("strict", "racy"),
    operations=30,
    random_seeds=(0,),
    random_operations=60,
)


class TestSpecs:
    def test_quick_campaign_meets_the_issue_floor(self):
        tasks = QUICK_CAMPAIGN.tasks()
        differential = [t for t in tasks if t.kind == "differential"]
        assert len(differential) >= 50
        assert all(len(t.protocols) == 3 for t in differential)
        assert any(t.max_outstanding_per_node >= 2 for t in differential)
        assert {t.mode for t in differential} == {"strict", "racy"}

    def test_deep_campaign_is_a_superset_of_axes(self):
        tasks = DEEP_CAMPAIGN.tasks()
        assert len(tasks) > len(QUICK_CAMPAIGN.tasks())
        assert {t.num_processors for t in tasks} == {4, 6}
        assert any(t.cache_capacity_blocks == 2 for t in tasks)

    def test_with_overrides_restricts_protocols_and_seeds(self):
        spec = QUICK_CAMPAIGN.with_overrides(
            protocols=["directory"], seeds=[3, 4]
        )
        tasks = spec.tasks()
        assert {t.seed for t in tasks if t.kind == "differential"} == {3, 4}
        assert all(t.protocols == ("directory",) for t in tasks)

    def test_unknown_campaign_name_raises(self):
        with pytest.raises(VerificationError):
            run_campaign("nope")

    def test_unknown_task_kind_raises(self):
        with pytest.raises(VerificationError):
            run_task(VerificationTask(kind="mystery", seed=0))


class TestExecution:
    def test_tiny_campaign_passes_serially(self):
        result = VerificationCampaign(TINY).run()
        assert result.ok, [f.failures for f in result.failures]
        assert result.traces == 4
        assert result.protocol_runs == 4 * 3 + 3  # differential + random
        assert result.wall_seconds > 0
        payload = result.to_jsonable()
        assert payload["ok"] is True
        assert payload["campaign"] == "tiny"

    def test_workers_match_serial_results(self):
        tasks = TINY.tasks()
        serial = run_campaign_tasks(tasks, workers=1)
        pooled = run_campaign_tasks(tasks, workers=2)
        assert [o.to_jsonable() for o in serial] == [
            o.to_jsonable() for o in pooled
        ]

    def test_run_campaign_accepts_spec_objects(self):
        result = run_campaign(TINY)
        assert result.spec.name == "tiny"
        assert result.ok


def _inject_directory_corruption(monkeypatch):
    """Mutate the directory owner's forwarded-GETS handler to serve garbage."""
    from repro.protocols.directory.cache_controller import (
        DirectoryCacheController,
    )

    original = DirectoryCacheController._serve_forward

    def corrupt(self, block, message):
        if message.msg_type is MessageType.FWD_GETS and block.is_owner:
            self._send_data(
                block.address, message.requester, 666666, message.transaction_id
            )
            block.state = MOSIState.OWNED
            block.tracked_sharers.add(message.requester)
            return
        return original(self, block, message)

    monkeypatch.setattr(DirectoryCacheController, "_serve_forward", corrupt)


class TestShrinking:
    def test_injected_bug_is_caught_and_shrunk_to_a_tiny_reproducer(
        self, monkeypatch
    ):
        """The ISSUE's acceptance bar: a mutated handler must be caught by the
        differential checker and shrunk to a <= 10-op reproducer."""
        _inject_directory_corruption(monkeypatch)
        runner = BatchRunner()
        failing_task = None
        for seed in range(8):
            task = VerificationTask(
                kind="differential", seed=seed, mode="strict", operations=50
            )
            if not run_task(task, runner).ok:
                failing_task = task
                break
        assert failing_task is not None, "differential checker missed the bug"
        predicate = differential_failure_predicate(failing_task, runner)
        shrunk = shrink_trace(failing_task.trace(), predicate)
        assert len(shrunk.ops) <= 10
        assert predicate(shrunk)  # the reproducer still fails

    def test_shrink_requires_a_failing_trace(self):
        task = VerificationTask(kind="differential", seed=0, operations=20)
        with pytest.raises(VerificationError):
            shrink_trace(task.trace(), lambda trace: False)

    def test_campaign_writes_replayable_artifacts(self, monkeypatch, tmp_path):
        _inject_directory_corruption(monkeypatch)
        spec = CampaignSpec(
            name="bughunt", seeds=(0, 1, 2), modes=("strict",), operations=50
        )
        result = VerificationCampaign(spec, artifact_dir=tmp_path).run()
        assert not result.ok
        failure = result.failures[0]
        assert failure.shrunk_trace is not None
        assert len(failure.shrunk_trace.ops) <= 10
        artifact = load_artifact(failure.artifact_path)
        assert artifact["failures"]
        assert artifact["task"]["seed"] == failure.task.seed
        # The artifact replays to the same verdict while the bug is in place.
        assert not replay_artifact(failure.artifact_path).ok

    def test_artifact_format_guard(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text(json.dumps({"format": "other"}))
        with pytest.raises(VerificationError):
            load_artifact(bogus)

    def test_artifact_without_shrunk_trace_replays_the_original(self, tmp_path):
        task = VerificationTask(kind="differential", seed=1, operations=30)
        path = write_artifact(tmp_path, task, ["boom"], None)
        result = replay_artifact(path)
        assert result.ok  # no bug injected: the regenerated trace passes

    def test_random_artifact_replays_the_random_task(self, tmp_path):
        task = VerificationTask(
            kind="random", seed=2, operations=60, protocols=("snooping",)
        )
        path = write_artifact(tmp_path, task, ["boom"], None)
        outcome = replay_artifact(path)
        # Random artifacts re-run the recorded tester task, not a synthetic
        # differential trace.
        assert outcome.task == task
        assert outcome.ok

    def test_artifact_names_distinguish_every_axis(self, tmp_path):
        base = dict(kind="differential", seed=0, mode="strict")
        first = VerificationTask(bandwidth_mb_per_second=400.0, **base)
        second = VerificationTask(bandwidth_mb_per_second=1600.0, **base)
        paths = {
            write_artifact(tmp_path, task, ["x"], None)
            for task in (first, second)
        }
        assert len(paths) == 2


# ------------------------------------------------------- robustness / service

import os as _os
import time as _time

_PARENT_PID = _os.getpid()


def _hang_chunk_in_child(tasks):
    """Chunk runner that wedges only inside a pool worker process."""
    if _os.getpid() != _PARENT_PID:
        _time.sleep(600)
    from repro.verification.campaign import _run_task_chunk

    return _run_task_chunk(tasks)


class TestTaskTimeout:
    def test_hung_task_is_cancelled_and_retried_serially(self, monkeypatch):
        import repro.verification.campaign as campaign_module

        tasks = TINY.tasks()
        serial = run_campaign_tasks(tasks, workers=1)
        monkeypatch.setattr(
            campaign_module, "_run_task_chunk", _hang_chunk_in_child
        )
        rescued = run_campaign_tasks(tasks, workers=2, task_timeout=0.5)
        assert [o.to_jsonable() for o in serial] == [
            o.to_jsonable() for o in rescued
        ]


class TestServiceCampaign:
    def test_service_outcomes_match_serial_field_for_field(self, tmp_path):
        from repro.experiments.service import FaultPlan, ServiceConfig

        serial = run_campaign(TINY)
        chaotic = run_campaign(
            TINY,
            service=ServiceConfig(
                store=tmp_path / "store", fault_plan=FaultPlan(kill_after=1)
            ),
        )
        assert [o.to_jsonable() for o in serial.outcomes] == [
            o.to_jsonable() for o in chaotic.outcomes
        ]
        assert chaotic.service is not None
        assert chaotic.service["worker_deaths"] >= 1
        assert chaotic.to_jsonable()["service"]["ok"] is True
        # Pool/serial runs report no service block at all.
        assert "service" not in serial.to_jsonable()


class TestWatchdogEvidence:
    def test_task_outcome_round_trips_through_jsonable(self):
        task = VerificationTask(kind="differential", seed=0, operations=30)
        outcome = run_task(task, BatchRunner())
        outcome.watchdog_dumps = {"bash": {"cycle": 9, "completed": 3}}
        clone = type(outcome).from_jsonable(outcome.to_jsonable())
        assert clone.to_jsonable() == outcome.to_jsonable()

    def test_write_artifact_embeds_watchdog_dumps(self, tmp_path):
        task = VerificationTask(kind="differential", seed=1, operations=30)
        dumps = {"bash": {"cycle": 120, "completed": 7, "operations": 30}}
        path = write_artifact(tmp_path, task, ["hang"], None, watchdog_dumps=dumps)
        payload = json.loads(path.read_text())
        assert payload["watchdog_dumps"] == dumps
        # Absent dumps serialise as None, keeping the artifact format stable.
        bare = write_artifact(
            tmp_path, VerificationTask(kind="differential", seed=2), ["x"], None
        )
        assert json.loads(bare.read_text())["watchdog_dumps"] is None

    def test_deadlock_dump_is_json_safe(self, small_config):
        from repro.common.config import ProtocolName
        from repro.system.multiprocessor import MultiprocessorSystem
        from repro.verification.differential import empty_trace_workload
        from repro.verification.invariants import deadlock_dump

        system = MultiprocessorSystem(
            small_config(ProtocolName.BASH), empty_trace_workload(4)
        )
        dump = deadlock_dump(
            system, completed=3, operations=10, extra={"recent_events": []}
        )
        encoded = json.loads(json.dumps(dump))
        assert encoded["protocol"] == "bash"
        assert encoded["completed"] == 3
        assert encoded["operations"] == 10
        assert encoded["recent_events"] == []
        assert isinstance(encoded["pending_events"], int)
