"""Differential verification: trace recording, replay, and cross-checking."""

import pytest

from repro.coherence.state import MOSIState
from repro.common.config import ProtocolName
from repro.errors import VerificationError
from repro.experiments.batch import BatchRunner
from repro.interconnect.message import MessageType
from repro.verification.differential import (
    MemoryTrace,
    RACY,
    ReplayConfig,
    STRICT,
    TraceOp,
    TraceReplayer,
    empty_trace_workload,
    generate_trace,
    run_differential,
)


class TestTraceGeneration:
    def test_deterministic_per_seed(self):
        assert generate_trace(5).ops == generate_trace(5).ops
        assert generate_trace(5).ops != generate_trace(6).ops

    def test_write_tokens_unique_and_nonzero(self):
        trace = generate_trace(1, operations=80)
        tokens = [op.token for op in trace.ops if op.kind == "write"]
        assert tokens
        assert 0 not in tokens
        assert len(tokens) == len(set(tokens))

    def test_racy_traces_have_a_single_writer_per_block(self):
        trace = generate_trace(2, operations=120, mode=RACY)
        assert trace.single_writer
        writers = {}
        for op in trace.ops:
            if op.kind == "write":
                writers.setdefault(op.block, set()).add(op.node)
        assert all(len(nodes) == 1 for nodes in writers.values())

    def test_strict_traces_migrate_ownership(self):
        # Across a handful of seeds, some strict trace must use >1 writer for
        # some block (that is the point of the serialised mode).
        multi = False
        for seed in range(6):
            trace = generate_trace(seed, operations=120, mode=STRICT)
            writers = {}
            for op in trace.ops:
                if op.kind == "write":
                    writers.setdefault(op.block, set()).add(op.node)
            multi = multi or any(len(nodes) > 1 for nodes in writers.values())
        assert multi

    def test_unknown_mode_rejected(self):
        with pytest.raises(VerificationError):
            generate_trace(1, mode="chaotic")

    def test_json_round_trip(self):
        trace = generate_trace(3, operations=40)
        clone = MemoryTrace.from_jsonable(trace.to_jsonable())
        assert clone == trace

    def test_subset_keeps_selected_ops_in_order(self):
        trace = generate_trace(4, operations=20)
        shrunk = trace.subset([5, 1, 9])
        assert shrunk.ops == (trace.ops[1], trace.ops[5], trace.ops[9])

    def test_predicted_final_tokens_follow_last_write(self):
        trace = MemoryTrace(
            num_processors=2, num_blocks=2, mode=STRICT, seed=0,
            single_writer=False,
            ops=(
                TraceOp(0, 0, "write", 1),
                TraceOp(1, 0, "write", 2),
                TraceOp(0, 1, "read"),
            ),
        )
        assert trace.predicted_final_tokens() == {0: 2, 1: 0}
        assert trace.expected_read_tokens() == {2: 0}

    def test_to_workload_drops_writebacks(self):
        trace = MemoryTrace(
            num_processors=2, num_blocks=1, mode=RACY, seed=0,
            single_writer=True,
            ops=(
                TraceOp(0, 0, "write", 1),
                TraceOp(0, 0, "writeback"),
                TraceOp(1, 0, "read"),
            ),
        )
        workload = trace.to_workload(64)
        data = workload.to_jsonable()
        assert len(data["0"]) == 1 and len(data["1"]) == 1


class TestDifferentialRuns:
    @pytest.mark.parametrize("mode", [STRICT, RACY])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_correct_protocols_agree(self, mode, seed, backend):
        trace = generate_trace(seed, operations=40, mode=mode)
        result = run_differential(trace)
        assert result.ok, result.failures
        for replay in result.results.values():
            assert replay.completed == replay.operations
            assert replay.final_image == trace.predicted_final_tokens()
            assert replay.midrun_report is not None
            assert replay.midrun_report.blocks_checked >= replay.operations

    def test_strict_observation_streams_identical(self):
        trace = generate_trace(7, operations=50, mode=STRICT)
        result = run_differential(trace)
        assert result.ok, result.failures
        streams = [
            {node: obs for node, obs in replay.observations.items()}
            for replay in result.results.values()
        ]
        assert streams[0] == streams[1] == streams[2]

    def test_two_outstanding_and_low_bandwidth(self):
        replay = ReplayConfig(
            bandwidth_mb_per_second=200.0, max_outstanding_per_node=2
        )
        for seed in (11, 12):
            trace = generate_trace(seed, operations=50, mode=RACY)
            result = run_differential(trace, replay=replay)
            assert result.ok, result.failures

    def test_tiny_cache_forces_evictions_and_still_passes(self):
        replay = ReplayConfig(cache_capacity_blocks=2)
        trace = generate_trace(13, num_blocks=4, operations=50, mode=RACY)
        result = run_differential(trace, replay=replay)
        assert result.ok, result.failures
        assert any(r.evictions > 0 for r in result.results.values())

    def test_reset_reuse_matches_fresh_systems(self):
        trace = generate_trace(5, operations=40, mode=STRICT)
        fresh = run_differential(trace)
        runner = BatchRunner()
        # Warm the runner with a different task first, then re-run.
        run_differential(generate_trace(9, operations=30, mode=RACY),
                         acquire=runner.acquire)
        reused = run_differential(trace, acquire=runner.acquire)
        assert fresh.ok and reused.ok
        for protocol in fresh.results:
            assert (
                fresh.results[protocol].observations
                == reused.results[protocol].observations
            )
            assert (
                fresh.results[protocol].final_image
                == reused.results[protocol].final_image
            )

    def test_replayer_rejects_mismatched_system(self, small_config):
        from repro.system.multiprocessor import MultiprocessorSystem

        trace = generate_trace(1, num_processors=4, operations=10)
        config = small_config(ProtocolName.SNOOPING, num_processors=6)
        system = MultiprocessorSystem(config, empty_trace_workload(6))
        with pytest.raises(VerificationError):
            TraceReplayer(system, trace)


class TestBugDetection:
    def test_corrupt_directory_data_is_caught_and_attributed(self, monkeypatch):
        """A mutated handler in one protocol is caught by the other two."""
        from repro.protocols.directory.cache_controller import (
            DirectoryCacheController,
        )

        original = DirectoryCacheController._serve_forward

        def corrupt(self, block, message):
            if message.msg_type is MessageType.FWD_GETS and block.is_owner:
                self._send_data(
                    block.address, message.requester, 424242,
                    message.transaction_id,
                )
                block.state = MOSIState.OWNED
                block.tracked_sharers.add(message.requester)
                return
            return original(self, block, message)

        monkeypatch.setattr(
            DirectoryCacheController, "_serve_forward", corrupt
        )
        caught = False
        for seed in range(4):
            trace = generate_trace(seed, operations=50, mode=STRICT)
            result = run_differential(trace)
            if not result.ok:
                caught = True
                assert any("directory" in f for f in result.failures)
                break
        assert caught

    def test_lost_invalidation_is_caught(self, monkeypatch):
        """A snooping sharer that ignores invalidations trips the checks."""
        from repro.protocols.snooping.cache_controller import (
            SnoopingCacheController,
        )

        original = SnoopingCacheController._serve_stable

        def never_invalidate(self, block, message):
            if (
                message.request_kind is MessageType.GETM
                and block.state is MOSIState.SHARED
            ):
                return  # bug: keep the stale shared copy
            return original(self, block, message)

        monkeypatch.setattr(
            SnoopingCacheController, "_serve_stable", never_invalidate
        )
        caught = False
        for seed in range(4):
            trace = generate_trace(seed, operations=50, mode=RACY)
            result = run_differential(
                trace, protocols=[ProtocolName.SNOOPING]
            )
            if not result.ok:
                caught = True
                break
        assert caught

    def test_watchdog_dumps_structured_failure_on_lost_data(self, monkeypatch):
        """Dropping every data response deadlocks the replay; the watchdog
        must convert that into a structured dump instead of a silent hang."""
        from repro.protocols.snooping.cache_controller import (
            SnoopingCacheController,
        )

        monkeypatch.setattr(
            SnoopingCacheController, "_handle_data", lambda self, message: None
        )
        trace = generate_trace(0, operations=20, mode=RACY)
        replay = ReplayConfig(watchdog_interval=5_000, drain_cycles=1_000)
        result = run_differential(
            trace, protocols=[ProtocolName.SNOOPING], replay=replay
        )
        assert not result.ok
        replay_result = result.results[ProtocolName.SNOOPING]
        dump = replay_result.watchdog_failure
        assert dump is not None
        assert dump["completed"] < dump["operations"]
        assert dump["outstanding"]
        assert dump["recent_events"]
        assert dump["protocol"] == "snooping"
        assert any("watchdog" in failure for failure in result.failures)
