"""Edge cases of the consistency checker plus invariant-message regressions."""

import re

import pytest

from repro.coherence.state import MOSIState
from repro.coherence.directory import MEMORY_OWNER
from repro.common.config import ProtocolName
from repro.errors import VerificationError
from repro.verification.consistency import ConsistencyChecker
from repro.verification.invariants import (
    InvariantMonitor,
    check_invariants,
    check_settled_block,
    check_single_owner,
)
from repro.workloads.base import MemoryOperation


class TestConsistencyEdgeCases:
    def test_concurrent_same_cycle_writes_order_by_sequence(self):
        """Two stores completing in the same cycle are still totally ordered
        by their interconnect sequence numbers, never by completion time."""
        checker = ConsistencyChecker()
        checker.record_write(node=0, address=0, token=1, order_seq=4, time=500)
        checker.record_write(node=1, address=0, token=2, order_seq=7, time=500)
        checker.record_read(node=2, address=0, token=2, order_seq=9, time=500)
        assert checker.check() == []
        # The same-cycle read observing the *earlier* store is stale.
        checker.record_read(node=3, address=0, token=1, order_seq=11, time=500)
        violations = checker.check()
        assert len(violations) == 1
        assert "latest earlier store wrote 2" in violations[0]

    def test_read_after_writeback_sees_memory_copy(self):
        """A writeback does not change the block's value: a read ordered after
        it must still observe the last store's token (served from memory)."""
        checker = ConsistencyChecker()
        checker.record_write(node=0, address=64, token=5, order_seq=3, time=10)
        # Writebacks are not recorded as stores; the later read is served by
        # memory, which must hold token 5.
        checker.record_read(node=1, address=64, token=5, order_seq=8, time=40)
        assert checker.check() == []
        # Observing the pre-writeback initial value instead is a violation.
        checker.record_read(node=2, address=64, token=0, order_seq=9, time=50)
        assert len(checker.check()) == 1

    def test_silent_store_chain_is_accepted(self):
        """Loads racing an owner's silent stores may see any chain prefix."""
        checker = ConsistencyChecker()
        checker.record_write(node=0, address=0, token=1, order_seq=2, time=10)
        checker.record_silent_write(node=0, address=0, token=2, parent_token=1, time=20)
        checker.record_silent_write(node=0, address=0, token=3, parent_token=2, time=30)
        for observed in (1, 2, 3):
            chain_checker = ConsistencyChecker()
            chain_checker.accesses.extend(checker.accesses)
            chain_checker.record_read(
                node=1, address=0, token=observed, order_seq=5, time=40
            )
            assert chain_checker.check() == [], observed

    def test_silent_chain_from_an_older_store_is_stale(self):
        """A chain descending from a superseded store must not satisfy reads
        ordered after the superseding store."""
        checker = ConsistencyChecker()
        checker.record_write(node=0, address=0, token=1, order_seq=2, time=10)
        checker.record_silent_write(node=0, address=0, token=2, parent_token=1, time=20)
        checker.record_write(node=1, address=0, token=9, order_seq=6, time=30)
        checker.record_read(node=2, address=0, token=2, order_seq=8, time=40)
        violations = checker.check()
        assert len(violations) == 1
        assert "latest earlier store wrote 9" in violations[0]

    def test_dangling_silent_chain_reports_unknown_token(self):
        checker = ConsistencyChecker()
        checker.record_silent_write(node=0, address=0, token=7, parent_token=99, time=5)
        checker.record_read(node=1, address=0, token=7, order_seq=3, time=10)
        violations = checker.check()
        assert len(violations) == 1
        assert "unknown token 7" in violations[0]

    def test_reset_forgets_accesses(self):
        checker = ConsistencyChecker()
        checker.record_write(0, 0, 1, 1, 1)
        checker.reset()
        assert checker.accesses == []
        assert checker.reads == checker.writes == 0


def _run_write_then_share(build_trace_system, protocol=ProtocolName.SNOOPING):
    ops = {
        0: [MemoryOperation(address=0, is_write=True)],
        1: [MemoryOperation(address=0, is_write=False, think_cycles=1500)],
        2: [],
        3: [],
    }
    system = build_trace_system(protocol, ops)
    system.run()
    return system


class TestInvariantMessageFormats:
    """Seeded regressions pinning the exact wording of every violation."""

    def test_multiple_owner_message(self, build_trace_system):
        system = _run_write_then_share(build_trace_system)
        rogue = system.nodes[2].cache_controller.blocks.lookup(0)
        rogue.state = MOSIState.MODIFIED
        report = check_invariants(system)
        assert any(
            re.fullmatch(r"block 0x0: multiple cache owners \[0, 2\]", v)
            for v in report.violations
        ), report.violations

    def test_modified_with_copies_message(self, build_trace_system):
        system = _run_write_then_share(build_trace_system)
        owner = system.nodes[0].cache_controller.blocks.lookup(0)
        owner.state = MOSIState.MODIFIED
        report = check_invariants(system)
        assert any(
            re.fullmatch(
                r"block 0x0: node 0 is Modified but \[1\] also hold copies", v
            )
            for v in report.violations
        ), report.violations

    def test_no_owner_but_home_disagrees_message(self, build_trace_system):
        system = _run_write_then_share(
            build_trace_system, ProtocolName.DIRECTORY
        )
        system.nodes[0].cache_controller.blocks.lookup(0).invalidate()
        report = check_invariants(system)
        assert any(
            re.fullmatch(r"block 0x0: no cache owner but home says P0 owns it", v)
            for v in report.violations
        ), report.violations

    def test_owner_but_home_says_memory_message(self, build_trace_system):
        system = _run_write_then_share(
            build_trace_system, ProtocolName.DIRECTORY
        )
        home = system.nodes[system.config.home_node(0)]
        home.memory_controller.directory.lookup(0).owner = MEMORY_OWNER
        report = check_invariants(system)
        assert any(
            re.fullmatch(
                r"block 0x0: cache \[0\] owns it but home says memory is the "
                r"owner",
                v,
            )
            for v in report.violations
        ), report.violations

    def test_stale_sharer_message(self, build_trace_system):
        system = _run_write_then_share(build_trace_system)
        system.nodes[1].cache_controller.blocks.lookup(0).data_token = 424242
        report = check_invariants(system)
        assert any(
            re.match(r"block 0x0: P1 holds stale token 424242 \(owner has \d+\)", v)
            for v in report.violations
        ), report.violations

    def test_consistency_unknown_token_message(self):
        checker = ConsistencyChecker()
        checker.record_read(node=2, address=64, token=17, order_seq=4, time=9)
        assert checker.check() == ["block 0x40: P2 read unknown token 17"]

    def test_consistency_stale_read_message(self):
        checker = ConsistencyChecker()
        checker.record_write(node=0, address=64, token=3, order_seq=2, time=5)
        checker.record_write(node=1, address=64, token=4, order_seq=6, time=8)
        checker.record_read(node=2, address=64, token=3, order_seq=9, time=12)
        assert checker.check() == [
            "block 0x40: P2 read token 3 at order 9 but the latest earlier "
            "store wrote 4"
        ]

    def test_raise_on_violation_wraps_the_messages(self):
        checker = ConsistencyChecker()
        checker.record_read(node=0, address=0, token=5, order_seq=1, time=1)
        with pytest.raises(VerificationError, match="unknown token 5"):
            checker.raise_on_violation()


class TestMonitorPieces:
    def test_single_owner_check_flags_two_owners(self, build_trace_system):
        system = _run_write_then_share(build_trace_system)
        assert check_single_owner(system, 0) is None
        system.nodes[3].cache_controller.blocks.lookup(0).state = MOSIState.OWNED
        assert "multiple cache owners" in check_single_owner(system, 0)

    def test_settled_check_flags_stale_sharer(self, build_trace_system):
        system = _run_write_then_share(build_trace_system)
        assert check_settled_block(system, 0) == []
        system.nodes[1].cache_controller.blocks.lookup(0).data_token = 7
        assert any(
            "stale token 7" in v for v in check_settled_block(system, 0)
        )

    def test_monitor_confirms_persistent_violations_only(self, build_trace_system):
        system = _run_write_then_share(build_trace_system)
        monitor = InvariantMonitor(system, confirm_cycles=50)
        # Corrupt a sharer, then report a completion for the address: the
        # candidate must only be recorded after it persists to the confirm
        # probe.
        system.nodes[1].cache_controller.blocks.lookup(0).data_token = 31337
        monitor.check_address(0)
        assert monitor.violations == []  # candidate, not yet confirmed
        system.simulator.run(until=system.simulator.now + 200)
        assert monitor.candidates_seen == 1
        assert any("stale token 31337" in v for v in monitor.violations)
        assert monitor.tripped
        assert not monitor.report().ok

    def test_monitor_drops_transient_violations(self, build_trace_system):
        system = _run_write_then_share(build_trace_system)
        block = system.nodes[1].cache_controller.blocks.lookup(0)
        original = block.data_token
        monitor = InvariantMonitor(system, confirm_cycles=100)
        block.data_token = 555
        monitor.check_address(0)
        # The "invalidation" lands before the confirm probe: candidate clears.
        system.simulator.scheduler.schedule_after(
            10, lambda: setattr(block, "data_token", original), "heal"
        )
        system.simulator.run(until=system.simulator.now + 500)
        assert monitor.candidates_seen == 1
        assert monitor.violations == []
