"""Queueing model behind Figure 2."""

import pytest

from repro.errors import ConfigurationError
from repro.queueing.mva import (
    delay_versus_utilization,
    knee_utilization,
    mva_single_station,
)
from repro.queueing.simulation import simulate_closed_network


class TestMVA:
    def test_single_customer_never_queues(self):
        point = mva_single_station(customers=1, service_time=1.0, think_time=10.0)
        assert point.queueing_delay == pytest.approx(0.0)
        assert point.response_time == pytest.approx(1.0)

    def test_zero_think_time_saturates_the_station(self):
        point = mva_single_station(customers=16, service_time=1.0, think_time=0.0)
        assert point.utilization == pytest.approx(1.0)
        # With 16 customers and no think time, one is in service and 15 wait.
        assert point.queue_length == pytest.approx(16.0)
        assert point.queueing_delay == pytest.approx(15.0)

    def test_utilization_decreases_with_think_time(self):
        utilizations = [
            mva_single_station(16, 1.0, z).utilization for z in (0.0, 8.0, 64.0)
        ]
        assert utilizations[0] > utilizations[1] > utilizations[2]

    def test_throughput_bounded_by_service_rate(self):
        for think in (0.0, 1.0, 10.0):
            point = mva_single_station(16, 1.0, think)
            assert point.throughput <= 1.0 + 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mva_single_station(0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            mva_single_station(1, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            mva_single_station(1, 1.0, -1.0)


class TestFigure2Curve:
    def test_curve_is_monotone_in_utilization(self):
        points = delay_versus_utilization()
        utils = [p.utilization for p in points]
        assert utils == sorted(utils)

    def test_delay_explodes_above_the_knee(self):
        points = delay_versus_utilization()
        low = [p for p in points if p.utilization < 0.5]
        high = [p for p in points if p.utilization > 0.95]
        assert low and high
        assert max(p.queueing_delay for p in low) < min(
            p.queueing_delay for p in high
        )

    def test_knee_sits_in_the_high_utilization_region(self):
        points = delay_versus_utilization()
        knee = knee_utilization(points)
        # The knee the paper's 75% threshold is designed to stay below.
        assert 0.6 < knee <= 1.0

    def test_delay_small_below_75_percent(self):
        points = delay_versus_utilization()
        below = [p for p in points if p.utilization <= 0.75]
        assert all(p.queueing_delay < 4.0 for p in below)


class TestQueueingSimulation:
    def test_simulation_agrees_with_mva(self):
        think = 16.0
        analytic = mva_single_station(16, 1.0, think)
        simulated = simulate_closed_network(
            customers=16, service_time=1.0, think_time=think, completions=30_000, seed=3
        )
        assert simulated.utilization == pytest.approx(analytic.utilization, rel=0.1)
        assert simulated.mean_queueing_delay == pytest.approx(
            analytic.queueing_delay, rel=0.3, abs=0.3
        )

    def test_higher_load_gives_longer_delays(self):
        light = simulate_closed_network(think_time=32.0, completions=5000, seed=1)
        heavy = simulate_closed_network(think_time=1.0, completions=5000, seed=1)
        assert heavy.mean_queueing_delay > light.mean_queueing_delay
        assert heavy.utilization > light.utilization

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_closed_network(customers=0)
        with pytest.raises(ConfigurationError):
            simulate_closed_network(completions=0)
