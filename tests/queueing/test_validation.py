"""MVA cross-validation: simulator traffic vs the analytic queueing model."""

import json

import pytest

from repro.common.config import ProtocolName, SystemConfig
from repro.errors import VerificationError
from repro.queueing import (
    UTILIZATION_TOLERANCE,
    calibrate_uncontended_response,
    run_traffic_validation,
    service_time_cycles,
    validate_traffic_point,
)


def _config(bandwidth=400.0):
    return SystemConfig(
        num_processors=8,
        protocol=ProtocolName.DIRECTORY,
        bandwidth_mb_per_second=bandwidth,
        random_seed=1,
    )


class TestServiceTime:
    def test_service_time_at_paper_bandwidth(self):
        # 400 MB/s at 400 MHz = 1 byte/cycle: 72B data + 8B marker = 200cy...
        # ceil(72/1) + ceil(8/1) with the configured message sizes
        config = _config()
        bpc = config.bytes_per_cycle
        expected = -(-config.data_message_bytes // bpc) + -(
            -config.request_message_bytes // bpc
        )
        assert service_time_cycles(config) == expected

    def test_service_time_shrinks_with_bandwidth(self):
        assert service_time_cycles(_config(1600.0)) < service_time_cycles(
            _config(400.0)
        )


class TestValidatePoint:
    def test_moderate_load_point_agrees_with_mva(self):
        point = validate_traffic_point(800.0, operations_per_processor=150)
        assert point.ok, point.failures()
        assert point.utilization_error <= UTILIZATION_TOLERANCE
        assert point.delay_within_band
        assert point.operations == 7 * 150

    def test_customers_must_leave_room_for_the_home(self):
        with pytest.raises(VerificationError):
            validate_traffic_point(500.0, customers=8, num_processors=8)

    def test_point_jsonable_shape(self):
        point = validate_traffic_point(1500.0, operations_per_processor=100)
        payload = json.loads(json.dumps(point.to_jsonable()))
        assert set(payload["measured"]) == {
            "utilization",
            "throughput",
            "queueing_delay",
            "response_time",
        }
        assert set(payload["mva"]) == set(payload["measured"])
        assert payload["ok"] == point.ok
        assert 0.0 <= payload["measured"]["utilization"] <= 1.0


class TestCalibration:
    def test_uncontended_response_exceeds_pure_service(self):
        calibration = calibrate_uncontended_response(
            operations_per_processor=100
        )
        service = service_time_cycles(_config())
        # a real miss pays protocol hops on top of the home link occupancy
        assert calibration > service
        assert calibration < 10 * service


class TestTrafficValidationSweep:
    def test_light_to_heavy_sweep_stays_within_tolerance(self):
        result = run_traffic_validation(
            think_times=(2000.0, 400.0), operations_per_processor=200
        )
        assert result.ok, result.failures()
        assert len(result.points) == 2
        # heavier load (shorter think time) must raise utilisation
        light, heavy = result.points
        assert heavy.measured_utilization > light.measured_utilization
        assert heavy.predicted.utilization > light.predicted.utilization

    def test_sweep_jsonable_documents_the_tolerances(self):
        result = run_traffic_validation(
            think_times=(1200.0,), operations_per_processor=100
        )
        payload = json.loads(json.dumps(result.to_jsonable()))
        assert payload["tolerances"]["utilization_abs"] == pytest.approx(
            UTILIZATION_TOLERANCE
        )
        assert "delay_band" in payload["tolerances"]
        assert payload["failures"] == []
        assert len(payload["points"]) == 1
