"""MOSI states, block store, directory entries, transactions."""

import pytest

from repro.coherence.block import CacheBlock
from repro.coherence.cache_state import CacheBlockStore
from repro.coherence.directory import DirectoryEntry, DirectoryStore
from repro.coherence.state import MEMORY_OWNER, MOSIState
from repro.coherence.transaction import Transaction
from repro.errors import ProtocolError
from repro.interconnect.message import MessageType


class TestMOSIState:
    def test_owner_states(self):
        assert MOSIState.MODIFIED.is_owner
        assert MOSIState.OWNED.is_owner
        assert not MOSIState.SHARED.is_owner
        assert not MOSIState.INVALID.is_owner

    def test_valid_data(self):
        assert MOSIState.MODIFIED.has_valid_data
        assert MOSIState.OWNED.has_valid_data
        assert MOSIState.SHARED.has_valid_data
        assert not MOSIState.INVALID.has_valid_data

    def test_only_modified_can_write(self):
        assert MOSIState.MODIFIED.can_write
        assert not MOSIState.OWNED.can_write
        assert not MOSIState.SHARED.can_write


class TestCacheBlock:
    def test_become_owner_clears_sharers(self):
        block = CacheBlock(address=64)
        block.tracked_sharers.add(3)
        block.become_owner(data_token=9)
        assert block.state is MOSIState.MODIFIED
        assert block.data_token == 9
        assert not block.tracked_sharers

    def test_invalidate(self):
        block = CacheBlock(address=64, state=MOSIState.OWNED)
        block.tracked_sharers.add(1)
        block.invalidate()
        assert block.state is MOSIState.INVALID
        assert not block.tracked_sharers


class TestCacheBlockStore:
    def test_lookup_creates_invalid_block(self):
        store = CacheBlockStore(capacity_blocks=4)
        assert store.state_of(64) is MOSIState.INVALID
        block = store.lookup(64)
        assert block.state is MOSIState.INVALID
        assert 64 in store

    def test_occupancy_counts_only_valid_blocks(self):
        store = CacheBlockStore(capacity_blocks=4)
        store.lookup(0).state = MOSIState.SHARED
        store.lookup(64)
        assert store.occupancy() == 1
        assert not store.is_full()

    def test_is_full_and_eviction_candidate(self):
        store = CacheBlockStore(capacity_blocks=2)
        a = store.lookup(0)
        a.state = MOSIState.SHARED
        a.last_access_time = 5
        b = store.lookup(64)
        b.state = MOSIState.MODIFIED
        b.last_access_time = 2
        assert store.is_full()
        assert store.eviction_candidate() is b  # least recently used

    def test_compact_drops_invalid_records(self):
        store = CacheBlockStore(capacity_blocks=4)
        store.lookup(0)
        store.lookup(64).state = MOSIState.SHARED
        assert store.compact() == 1
        assert len(store) == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ProtocolError):
            CacheBlockStore(capacity_blocks=0)


class TestDirectoryEntry:
    def test_defaults_to_memory_owner(self):
        entry = DirectoryEntry(address=0)
        assert entry.memory_is_owner
        assert entry.owner == MEMORY_OWNER

    def test_needed_nodes_for_getm(self):
        entry = DirectoryEntry(address=0, owner=2, sharers={1, 3})
        assert entry.needed_nodes_for_getm(requester=1) == {2, 3}
        assert entry.needed_nodes_for_getm(requester=2) == {1, 3}

    def test_needed_nodes_for_gets(self):
        entry = DirectoryEntry(address=0, owner=2)
        assert entry.needed_nodes_for_gets(requester=1) == {2}
        assert entry.needed_nodes_for_gets(requester=2) == set()
        memory_entry = DirectoryEntry(address=0)
        assert memory_entry.needed_nodes_for_gets(requester=1) == set()

    def test_sufficiency_check(self):
        entry = DirectoryEntry(address=0, owner=2, sharers={3})
        assert entry.is_sufficient(True, 1, frozenset({0, 1, 2, 3}))
        assert not entry.is_sufficient(True, 1, frozenset({0, 1}))
        assert entry.is_sufficient(False, 1, frozenset({1, 2}))
        assert not entry.is_sufficient(False, 1, frozenset({0, 1}))

    def test_grant_exclusive_and_add_sharer(self):
        entry = DirectoryEntry(address=0)
        entry.add_sharer(3)
        entry.grant_exclusive(1)
        assert entry.owner == 1
        assert not entry.sharers
        entry.add_sharer(1)  # owner is never recorded as a sharer
        assert not entry.sharers

    def test_writeback_to_memory(self):
        entry = DirectoryEntry(address=0, owner=1, awaiting_writeback=True)
        entry.writeback_to_memory(data_token=77)
        assert entry.memory_is_owner
        assert entry.data_token == 77
        assert not entry.awaiting_writeback


class TestDirectoryStore:
    def test_lookup_creates_entry(self):
        store = DirectoryStore()
        entry = store.lookup(128)
        assert entry.memory_is_owner
        assert 128 in store
        assert len(store) == 1


class TestTransaction:
    def test_latency(self):
        txn = Transaction(address=0, kind=MessageType.GETM, requester=0, issue_time=100)
        assert txn.latency is None
        txn.completion_time = 350
        assert txn.latency == 250

    def test_marker_and_invalidate_ordering(self):
        txn = Transaction(address=0, kind=MessageType.GETS, requester=0, issue_time=0)
        txn.record_marker(10)
        txn.note_invalidate(5)
        assert not txn.invalidated_after()
        txn.note_invalidate(15)
        assert txn.invalidated_after()

    def test_is_write(self):
        assert Transaction(address=0, kind=MessageType.GETM, requester=0, issue_time=0).is_write
        assert not Transaction(address=0, kind=MessageType.GETS, requester=0, issue_time=0).is_write
