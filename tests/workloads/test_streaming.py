"""Streaming trace path: JSONL round trips, equivalence, bounded memory."""

import json
import pickle
import random
import tracemalloc

import pytest

from repro.common.config import ProtocolName, SystemConfig
from repro.errors import WorkloadError
from repro.system.multiprocessor import MultiprocessorSystem
from repro.workloads.base import MemoryOperation
from repro.workloads.streaming import (
    GeneratedOpStream,
    JsonlTraceReader,
    StreamingTraceFileSpec,
    StreamingTraceWorkload,
    StreamingTrafficSpec,
    write_trace_jsonl,
)
from repro.workloads.trace import TraceWorkload
from repro.workloads.traffic import (
    ZipfianTrafficSpec,
    build_traffic_trace,
    traffic_operation_stream,
)

BLOCK = 64
PROCESSORS = 4


def bind(workload, processors=PROCESSORS, block=BLOCK, seed=1):
    workload.bind(processors, block, random.Random(seed))
    return workload


def drain(workload, processors=PROCESSORS):
    """Pump every node dry through the workload contract; per-node op lists."""
    ops = {node: [] for node in range(processors)}
    now = 0
    while not workload.all_finished():
        progressed = False
        for node in range(processors):
            op = workload.next_operation(node, now)
            if op is None:
                continue
            workload.on_complete(node, op, 100, True, now)
            ops[node].append(op)
            progressed = True
        now += 1 if progressed else 100
    return ops


def run_system(workload_factory, protocol=ProtocolName.BASH, seed=1):
    config = SystemConfig(
        num_processors=PROCESSORS,
        protocol=protocol,
        bandwidth_mb_per_second=1600.0,
        random_seed=seed,
    )
    result = MultiprocessorSystem(config, workload_factory(seed)).run()
    return (result.cycles, result.operations, result.misses, result.hits)


class TestJsonlRoundTrip:
    def test_write_then_read_preserves_every_operation(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        trace = build_traffic_trace(PROCESSORS, 300, seed=7)
        total = write_trace_jsonl(path, trace, interleave=32)
        assert total == PROCESSORS * 300
        reader = JsonlTraceReader(path)
        assert reader.num_processors == PROCESSORS
        assert reader.header["interleave"] == 32
        for node in range(PROCESSORS):
            replayed = []
            while True:
                window = reader.next_window(node, 64)
                if not window:
                    break
                replayed.extend(window)
            assert replayed == trace[node]

    def test_interleaved_read_ahead_stays_near_one_chunk_per_node(
        self, tmp_path
    ):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(
            path, build_traffic_trace(PROCESSORS, 400, seed=2), interleave=32
        )
        reader = JsonlTraceReader(path)
        while True:
            windows = [
                reader.next_window(node, 32) for node in range(PROCESSORS)
            ]
            if not any(windows):
                break
        # round-robin consumption of a round-robin file: the buffer never
        # holds much more than one writer chunk per other node
        assert reader.max_buffered_seen <= 32 * PROCESSORS

    def test_restart_rewinds_to_the_first_operation(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        trace = build_traffic_trace(2, 50, seed=3)
        write_trace_jsonl(path, trace)
        reader = JsonlTraceReader(path)
        first = reader.next_window(0, 10)
        reader.restart()
        assert reader.next_window(0, 10) == first

    def test_writer_validates_inputs(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with pytest.raises(WorkloadError):
            write_trace_jsonl(path, {}, interleave=8)
        with pytest.raises(WorkloadError):
            write_trace_jsonl(path, {0: []}, interleave=0)


class TestReaderDiagnostics:
    def _file_with_rows(self, tmp_path, rows):
        path = str(tmp_path / "bad.jsonl")
        header = {
            "format": "repro-trace",
            "version": 1,
            "num_processors": 2,
            "block_bytes": 64,
            "interleave": 4,
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for row in rows:
                handle.write(row + "\n")
        return path

    def test_missing_file_is_a_workload_error(self, tmp_path):
        with pytest.raises(WorkloadError, match="does not exist"):
            JsonlTraceReader(str(tmp_path / "absent.jsonl"))

    def test_non_trace_file_is_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(WorkloadError, match="repro-trace"):
            JsonlTraceReader(str(path))

    def test_future_version_is_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            '{"format": "repro-trace", "version": 99, "num_processors": 1}\n'
        )
        with pytest.raises(WorkloadError, match="version 99"):
            JsonlTraceReader(str(path))

    def test_malformed_json_row_names_the_line(self, tmp_path):
        path = self._file_with_rows(tmp_path, ["[0, 64, false, 1, 0", ""])
        reader = JsonlTraceReader(path)
        with pytest.raises(WorkloadError, match="line 2.*not valid JSON"):
            reader.next_window(0, 4)

    def test_wrong_shape_row_names_the_line(self, tmp_path):
        path = self._file_with_rows(
            tmp_path, ['[0, 64, false, 1, 0, "ok", "extra"]']
        )
        reader = JsonlTraceReader(path)
        with pytest.raises(WorkloadError, match="line 2: expected"):
            reader.next_window(0, 4)

    def test_bad_field_type_names_the_line(self, tmp_path):
        path = self._file_with_rows(
            tmp_path, ['[0, "not-an-address", false, 1, 0, "x"]']
        )
        reader = JsonlTraceReader(path)
        with pytest.raises(WorkloadError, match="line 2: malformed field"):
            reader.next_window(0, 4)

    def test_processor_count_mismatch_is_rejected_at_bind(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(path, build_traffic_trace(2, 10, seed=1))
        workload = StreamingTraceWorkload(JsonlTraceReader(path))
        with pytest.raises(WorkloadError, match="records 2 processors"):
            bind(workload, processors=4)

    def test_skewed_file_trips_the_read_ahead_guard(self, tmp_path):
        # all of node 1's ops before node 0's: serving node 0 first forces
        # the reader to buffer the whole other stream
        path = str(tmp_path / "skewed.jsonl")
        header = {
            "format": "repro-trace",
            "version": 1,
            "num_processors": 2,
            "block_bytes": 64,
            "interleave": 4,
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for i in range(64):
                handle.write(json.dumps([1, i * 64, False, 0, 0, ""]) + "\n")
            handle.write(json.dumps([0, 0, False, 0, 0, ""]) + "\n")
        reader = JsonlTraceReader(path, max_buffered_ops=16)
        with pytest.raises(WorkloadError, match="read-ahead exceeded 16"):
            reader.next_window(0, 4)


class TestStreamingEquivalence:
    def test_streamed_ops_equal_materialised_trace(self):
        spec = StreamingTrafficSpec(operations_per_processor=70, window_ops=16)
        streamed = drain(bind(spec(5)))
        assert streamed == build_traffic_trace(PROCESSORS, 70, seed=5)

    def test_streaming_simulation_matches_materialised_twin(self):
        operations = 60
        materialised = run_system(
            ZipfianTrafficSpec(operations_per_processor=operations)
        )
        streamed = run_system(
            StreamingTrafficSpec(operations_per_processor=operations)
        )
        assert streamed == materialised

    def test_file_replay_matches_trace_workload_golden_run(self, tmp_path):
        # small prefix recorded to disk, then replayed through a full
        # simulation: file streaming must be op-identical to TraceWorkload
        path = str(tmp_path / "prefix.jsonl")
        trace = build_traffic_trace(PROCESSORS, 40, seed=9)
        write_trace_jsonl(path, trace, interleave=16)
        golden = run_system(lambda seed: TraceWorkload(trace))
        replayed = run_system(
            StreamingTraceFileSpec(path, window_ops=16), seed=1
        )
        assert replayed == golden

    def test_rebind_replays_identically(self):
        spec = StreamingTrafficSpec(operations_per_processor=30, window_ops=8)
        workload = spec(4)
        first = drain(bind(workload))
        second = drain(bind(workload))
        assert first == second
        assert workload.total_streamed == 30 * PROCESSORS

    def test_compiled_sequencer_step_still_engages(self):
        # class-level entry points are the compiled fast path's contract
        workload = StreamingTrafficSpec(operations_per_processor=10)(1)
        assert "next_operation" not in vars(workload)
        assert "on_complete" not in vars(workload)


class TestStreamingWorkloadContract:
    def test_window_ops_must_be_positive(self):
        with pytest.raises(WorkloadError):
            StreamingTraceWorkload(GeneratedOpStream(lambda *a: iter(())), 0)

    def test_generated_stream_requires_configure(self):
        stream = GeneratedOpStream(lambda *a: iter(()))
        with pytest.raises(WorkloadError, match="before configure"):
            stream.restart()

    def test_file_spec_is_picklable(self, tmp_path):
        spec = StreamingTraceFileSpec(str(tmp_path / "t.jsonl"), window_ops=8)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.cache_token() == spec.cache_token()

    def test_traffic_spec_is_picklable(self):
        spec = StreamingTrafficSpec(operations_per_processor=12)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.cache_token() == spec.cache_token()


class TestBoundedMemory:
    def test_million_op_stream_holds_only_window_proportional_state(self):
        # >= 1M operations through the full workload contract while asserting
        # the resident high-water mark is window-, not trace-, proportional.
        processors = 8
        per_node = 130_000  # 8 x 130k = 1.04M operations
        window_ops = 32

        def factory(node, num_processors, block_bytes):
            return (
                MemoryOperation(
                    address=((node * 131 + i) % 512) * block_bytes,
                    is_write=(i & 7) == 0,
                    think_cycles=0,
                )
                for i in range(per_node)
            )

        workload = StreamingTraceWorkload(
            GeneratedOpStream(factory), window_ops=window_ops
        )
        bind(workload, processors=processors)
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        completed = 0
        for node in range(processors):
            while True:
                op = workload.next_operation(node, 0)
                if op is None:
                    break
                workload.on_complete(node, op, 100, True, 0)
                completed += 1
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert completed == processors * per_node >= 1_000_000
        assert workload.all_finished()
        # residency: at most one window per node in flight at once, never
        # anywhere near the 1M-op stream length
        assert workload.max_resident_ops <= window_ops * processors
        # heap high-water: a million MemoryOperations would be tens of MB;
        # the streaming path must stay within a couple of windows' worth
        assert peak - before < 4 * 1024 * 1024

    def test_max_resident_tracks_reader_read_ahead_too(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(
            path, build_traffic_trace(2, 200, seed=1), interleave=16
        )
        workload = StreamingTraceWorkload(
            JsonlTraceReader(path), window_ops=16
        )
        drain(bind(workload, processors=2), processors=2)
        assert workload.total_streamed == 400
        assert 0 < workload.max_resident_ops <= 16 * 2 * 4
