"""Internet-service traffic models: Zipf skew, load modulation, tenancy."""

import pickle
import random

import pytest

from repro.common.config import ProtocolName, SystemConfig
from repro.errors import WorkloadError
from repro.system.multiprocessor import MultiprocessorSystem
from repro.workloads.traffic import (
    BurstyTrafficSpec,
    DiurnalTrafficSpec,
    MultiTenantTrafficSpec,
    OpenLoopHomeWorkload,
    TrafficWorkload,
    ZipfSampler,
    ZipfianTrafficSpec,
    build_traffic_trace,
    tenant_of,
    traffic_operation_stream,
)

BLOCK = 64


def bind(workload, processors=4, block=BLOCK, seed=1):
    workload.bind(processors, block, random.Random(seed))
    return workload


def drain(workload, processors=4, now=0):
    """Pump every node's stream dry, completing each op immediately."""
    ops = {node: [] for node in range(processors)}
    while not workload.all_finished():
        progressed = False
        for node in range(processors):
            op = workload.next_operation(node, now)
            if op is None:
                continue
            workload.on_complete(node, op, 100, True, now)
            ops[node].append(op)
            progressed = True
        now += 1 if progressed else 100
    return ops


class TestZipfSampler:
    def test_top_k_mass_matches_analytic_cdf(self):
        exponent = 0.9
        sampler = ZipfSampler(256, exponent)

        def harmonic(k):
            return sum(1.0 / (rank + 1) ** exponent for rank in range(k))

        for k in (1, 10, 64, 256):
            assert sampler.top_k_mass(k) == pytest.approx(
                harmonic(k) / harmonic(256)
            )
        assert sampler.top_k_mass(0) == 0.0
        assert sampler.top_k_mass(256) == pytest.approx(1.0)

    def test_empirical_mass_tracks_analytic_cdf(self):
        sampler = ZipfSampler(128, 1.0)
        rng = random.Random(7)
        draws = 20_000
        counts = [0] * 128
        for _ in range(draws):
            counts[sampler.sample(rng)] += 1
        running = 0
        for k in (1, 4, 16, 64):
            running = sum(counts[:k])
            measured = running / draws
            assert measured == pytest.approx(sampler.top_k_mass(k), abs=0.02)

    def test_skew_concentrates_mass_on_the_head(self):
        flat = ZipfSampler(512, 0.0)
        skewed = ZipfSampler(512, 1.2)
        assert skewed.top_k_mass(8) > flat.top_k_mass(8)
        # uniform popularity: top-8 of 512 holds exactly 8/512 of the mass
        assert flat.top_k_mass(8) == pytest.approx(8 / 512)

    def test_ranks_stay_in_range(self):
        sampler = ZipfSampler(16, 0.9)
        rng = random.Random(3)
        assert all(0 <= sampler.sample(rng) < 16 for _ in range(2_000))


class TestTrafficStreamDeterminism:
    def test_same_seed_same_stream(self):
        first = list(
            traffic_operation_stream(
                2, seed=9, num_processors=4, operations=120
            )
        )
        second = list(
            traffic_operation_stream(
                2, seed=9, num_processors=4, operations=120
            )
        )
        assert first == second

    def test_seed_changes_the_traffic(self):
        first = list(
            traffic_operation_stream(
                0, seed=1, num_processors=4, operations=80
            )
        )
        second = list(
            traffic_operation_stream(
                0, seed=2, num_processors=4, operations=80
            )
        )
        assert first != second

    def test_stream_independent_of_other_nodes(self):
        # Per-node rng derives from (seed, node) alone, so node 1's stream is
        # identical whether the machine has 4 or 8 processors... except the
        # tenant base, which depends on the processor count; pin one group.
        lone = list(
            traffic_operation_stream(
                1, seed=5, num_processors=4, operations=60, tenant_groups=1
            )
        )
        crowded = list(
            traffic_operation_stream(
                1, seed=5, num_processors=8, operations=60, tenant_groups=1
            )
        )
        assert lone == crowded

    def test_materialised_trace_matches_streams(self):
        trace = build_traffic_trace(4, 50, seed=11)
        for node in range(4):
            assert trace[node] == list(
                traffic_operation_stream(
                    node, seed=11, num_processors=4, operations=50
                )
            )


def _run_traffic(spec, seed=3, protocol=ProtocolName.BASH):
    config = SystemConfig(
        num_processors=4,
        protocol=protocol,
        bandwidth_mb_per_second=1600.0,
        random_seed=seed,
    )
    result = MultiprocessorSystem(config, spec(seed)).run()
    return (
        result.cycles,
        result.operations,
        result.misses,
        result.mean_miss_latency,
    )


class TestTimeVaryingDeterminism:
    def test_diurnal_runs_deterministically_per_seed(self):
        spec = DiurnalTrafficSpec(operations_per_processor=40)
        assert _run_traffic(spec, seed=3) == _run_traffic(spec, seed=3)

    def test_bursty_runs_deterministically_per_seed(self):
        spec = BurstyTrafficSpec(operations_per_processor=40)
        assert _run_traffic(spec, seed=4) == _run_traffic(spec, seed=4)

    def test_diurnal_load_factor_oscillates(self):
        workload = bind(
            TrafficWorkload(
                10, diurnal_period=1000, diurnal_amplitude=0.5
            )
        )
        peak = workload.load_factor(250)  # quarter period: sin peak
        trough = workload.load_factor(750)
        assert peak == pytest.approx(1.5, abs=1e-6)
        assert trough == pytest.approx(0.5, abs=1e-6)
        assert workload.load_factor(0) == pytest.approx(1.0, abs=1e-6)

    def test_burst_factor_applies_inside_burst_window(self):
        workload = bind(
            TrafficWorkload(10, burst_on=100, burst_off=300, burst_factor=4.0)
        )
        assert workload.load_factor(50) == pytest.approx(4.0)
        assert workload.load_factor(200) == pytest.approx(1.0)
        # periodic: the next burst starts one on+off cycle later
        assert workload.load_factor(450) == pytest.approx(4.0)

    def test_high_load_shortens_think_time(self):
        burst = bind(
            TrafficWorkload(
                30,
                seed=6,
                burst_on=10**9,  # permanently inside the burst
                burst_off=1,
                burst_factor=4.0,
                think_jitter=0,
            )
        )
        calm = bind(TrafficWorkload(30, seed=6, think_jitter=0))
        busy_op = burst.next_operation(0, 0)
        calm_op = calm.next_operation(0, 0)
        assert busy_op.address == calm_op.address
        assert busy_op.think_cycles == round(calm_op.think_cycles / 4.0)

    def test_constructor_validation(self):
        with pytest.raises(WorkloadError):
            TrafficWorkload(10, diurnal_amplitude=1.0, diurnal_period=100)
        with pytest.raises(WorkloadError):
            TrafficWorkload(10, diurnal_period=-1)
        with pytest.raises(WorkloadError):
            TrafficWorkload(10, burst_on=10, burst_off=10, burst_factor=0.5)


class TestMultiTenant:
    def test_tenant_of_partitions_nodes_evenly(self):
        assert [tenant_of(node, 8, 4) for node in range(8)] == [
            0, 0, 1, 1, 2, 2, 3, 3,
        ]
        assert [tenant_of(node, 4, 1) for node in range(4)] == [0, 0, 0, 0]

    def test_tenants_never_share_blocks(self):
        spec = MultiTenantTrafficSpec(operations_per_processor=60)
        workload = bind(spec(2), processors=8)
        ops = drain(workload, processors=8)
        for node, issued in ops.items():
            tenant = tenant_of(node, 8, spec.tenant_groups)
            lo = tenant * spec.num_keys
            hi = lo + spec.num_keys
            assert issued, f"node {node} issued nothing"
            for op in issued:
                assert lo <= op.address // BLOCK < hi

    def test_single_tenant_spans_the_whole_key_space(self):
        workload = bind(ZipfianTrafficSpec(operations_per_processor=60)(2))
        ops = drain(workload)
        blocks = {
            op.address // BLOCK for issued in ops.values() for op in issued
        }
        assert max(blocks) < 512 and min(blocks) >= 0


class TestOpenLoopHomeWorkload:
    def test_home_node_issues_nothing(self):
        workload = bind(OpenLoopHomeWorkload(20, 50.0, home=0, seed=1))
        assert workload.next_operation(0, 0) is None
        assert workload.finished(0)

    def test_issuer_cap_limits_active_nodes(self):
        workload = bind(OpenLoopHomeWorkload(20, 50.0, home=0, issuers=2))
        assert workload.next_operation(1, 0) is not None
        assert workload.next_operation(2, 0) is not None
        assert workload.next_operation(3, 0) is None

    def test_every_miss_homes_on_the_home_node(self):
        workload = bind(OpenLoopHomeWorkload(30, 50.0, home=0, seed=2))
        ops = drain(workload)
        assert not ops[0]
        for node in (1, 2, 3):
            assert len(ops[node]) == 30
            for op in ops[node]:
                assert (op.address // BLOCK) % 4 == 0


class TestTrafficSpecs:
    @pytest.mark.parametrize(
        "spec",
        [
            ZipfianTrafficSpec(),
            DiurnalTrafficSpec(),
            BurstyTrafficSpec(),
            MultiTenantTrafficSpec(),
        ],
        ids=lambda spec: type(spec).__name__,
    )
    def test_spec_is_picklable_and_tokenable(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.cache_token() == spec.cache_token()
        workload = clone(seed=1)
        assert isinstance(workload, TrafficWorkload)

    def test_cache_tokens_distinguish_models(self):
        tokens = {
            spec().cache_token()
            for spec in (
                ZipfianTrafficSpec,
                DiurnalTrafficSpec,
                BurstyTrafficSpec,
                MultiTenantTrafficSpec,
            )
        }
        assert len(tokens) == 4
