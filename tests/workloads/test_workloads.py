"""Workload generators: microbenchmark, synthetic presets, traces."""

import random

import pytest

from repro.errors import WorkloadError
from repro.workloads.base import MemoryOperation
from repro.workloads.microbenchmark import LockingMicrobenchmark
from repro.workloads.presets import WORKLOAD_ORDER, WORKLOAD_PRESETS, preset
from repro.workloads.synthetic import SyntheticCommercialWorkload
from repro.workloads.trace import TraceWorkload


def bind(workload, processors=4, block=64, seed=1):
    workload.bind(processors, block, random.Random(seed))
    return workload


class TestLockingMicrobenchmark:
    def test_generates_block_aligned_store_operations(self):
        workload = bind(LockingMicrobenchmark(num_locks=16, acquires_per_processor=5))
        op = workload.next_operation(0, now=0)
        assert op.is_write
        assert op.address % 64 == 0
        assert op.address < 16 * 64

    def test_respects_acquire_budget(self):
        workload = bind(LockingMicrobenchmark(num_locks=16, acquires_per_processor=3))
        ops = []
        while True:
            op = workload.next_operation(1, now=0)
            if op is None:
                break
            ops.append(op)
        assert len(ops) == 3

    def test_never_picks_the_same_lock_twice_in_a_row(self):
        workload = bind(LockingMicrobenchmark(num_locks=8, acquires_per_processor=50))
        last = None
        for _ in range(50):
            op = workload.next_operation(0, now=0)
            assert op.address != last
            last = op.address

    def test_think_time_applied(self):
        workload = bind(
            LockingMicrobenchmark(num_locks=8, acquires_per_processor=5, think_cycles=200)
        )
        op = workload.next_operation(0, now=0)
        assert op.think_cycles >= 200

    def test_finished_tracks_completions(self):
        workload = bind(LockingMicrobenchmark(num_locks=8, acquires_per_processor=2))
        op1 = workload.next_operation(0, now=0)
        op2 = workload.next_operation(0, now=0)
        assert not workload.finished(0)
        workload.on_complete(0, op1, 100, True, now=100)
        workload.on_complete(0, op2, 100, True, now=200)
        assert workload.finished(0)
        assert workload.total_acquires() == 2

    def test_validation(self):
        with pytest.raises(WorkloadError):
            LockingMicrobenchmark(num_locks=1)
        with pytest.raises(WorkloadError):
            LockingMicrobenchmark(acquires_per_processor=0)
        with pytest.raises(WorkloadError):
            LockingMicrobenchmark(think_cycles=-1)


class TestWorkloadPresets:
    def test_all_five_paper_workloads_present(self):
        assert set(WORKLOAD_PRESETS) == {"oltp", "apache", "specjbb", "slashcode", "barnes"}
        assert set(WORKLOAD_ORDER) == set(WORKLOAD_PRESETS)

    def test_paper_characterisations_hold(self):
        # SPECjbb has a smaller sharing fraction; Slashcode and Barnes have
        # lower miss rates (Section 5.4's explanation of Figure 10).
        jbb = preset("specjbb")
        others = [preset(name) for name in ("oltp", "apache", "slashcode", "barnes")]
        assert all(jbb.sharing_fraction < other.sharing_fraction for other in others)
        high_rate = min(preset("oltp"), preset("apache"), key=lambda p: p.misses_per_1000_instructions)
        assert preset("slashcode").misses_per_1000_instructions < high_rate.misses_per_1000_instructions
        assert preset("barnes").misses_per_1000_instructions < high_rate.misses_per_1000_instructions

    def test_lookup_is_case_insensitive_and_validates(self):
        assert preset("OLTP").name == "OLTP"
        with pytest.raises(KeyError):
            preset("doom3")

    def test_instructions_per_miss(self):
        assert preset("oltp").instructions_per_miss == pytest.approx(125.0)


class TestSyntheticWorkload:
    def test_generates_requested_number_of_operations(self):
        workload = bind(SyntheticCommercialWorkload("oltp", operations_per_processor=10))
        count = 0
        while workload.next_operation(0, now=0) is not None:
            count += 1
        assert count == 10

    def test_sharing_fraction_roughly_respected(self):
        workload = bind(
            SyntheticCommercialWorkload("oltp", operations_per_processor=400), processors=4
        )
        labels = []
        for node in range(4):
            while True:
                op = workload.next_operation(node, now=0)
                if op is None:
                    break
                labels.append(op.label)
        sharing = labels.count("sharing-miss") / len(labels)
        assert 0.4 < sharing < 0.85

    def test_think_time_reflects_miss_rate(self):
        sparse = bind(SyntheticCommercialWorkload("barnes", operations_per_processor=200))
        dense = bind(SyntheticCommercialWorkload("oltp", operations_per_processor=200))
        sparse_think = [sparse.next_operation(0, 0).think_cycles for _ in range(200)]
        dense_think = [dense.next_operation(0, 0).think_cycles for _ in range(200)]
        assert sum(sparse_think) / 200 > sum(dense_think) / 200

    def test_instruction_accounting(self):
        workload = bind(SyntheticCommercialWorkload("specjbb", operations_per_processor=5))
        op = workload.next_operation(0, now=0)
        workload.on_complete(0, op, 100, True, now=100)
        assert workload.total_instructions() == op.instructions > 0

    def test_accepts_preset_object(self):
        workload = SyntheticCommercialWorkload(preset("apache"))
        assert workload.preset.name == "Apache"


class TestTraceWorkload:
    def test_replays_in_order(self):
        ops = [MemoryOperation(address=0, is_write=True), MemoryOperation(address=64, is_write=False)]
        workload = bind(TraceWorkload({0: ops, 1: []}))
        assert workload.next_operation(0, 0).address == 0
        assert workload.next_operation(0, 0).address == 64
        assert workload.next_operation(0, 0) is None

    def test_finished_after_completions(self):
        ops = [MemoryOperation(address=0, is_write=True)]
        workload = bind(TraceWorkload({0: ops, 1: []}))
        assert workload.finished(1)
        op = workload.next_operation(0, 0)
        assert not workload.finished(0)
        workload.on_complete(0, op, 10, True, 10)
        assert workload.finished(0)
        assert workload.all_finished()

    def test_single_processor_stream_helper(self):
        workload = TraceWorkload.single_processor_stream(
            2, [MemoryOperation(address=0, is_write=True)], num_processors=4
        )
        assert workload.next_operation(2, 0) is not None
        assert workload.next_operation(0, 0) is None

    def test_requires_nonempty_traces(self):
        with pytest.raises(WorkloadError):
            TraceWorkload({})

    def test_json_round_trip(self):
        ops = {
            0: [
                MemoryOperation(address=0, is_write=True, think_cycles=3,
                                instructions=4, label="store"),
                MemoryOperation(address=64, is_write=False),
            ],
            1: [],
        }
        workload = TraceWorkload(ops)
        clone = TraceWorkload.from_jsonable(workload.to_jsonable())
        assert clone.to_jsonable() == workload.to_jsonable()
        first = clone.next_operation(0, 0)
        assert first.address == 0 and first.is_write
        assert first.think_cycles == 3 and first.instructions == 4
        assert first.label == "store"

    def test_jsonable_payload_is_json_serialisable(self):
        import json

        workload = TraceWorkload({0: [MemoryOperation(address=128, is_write=False)]})
        payload = json.dumps(workload.to_jsonable())
        assert TraceWorkload.from_jsonable(json.loads(payload)).to_jsonable() == (
            workload.to_jsonable()
        )


class TestTraceRowDiagnostics:
    """operations_from_jsonable must name the node and row of any bad row."""

    def _payload(self, rows):
        from repro.workloads.trace import operations_from_jsonable

        return operations_from_jsonable({"3": rows})

    def test_short_row_names_node_and_index(self):
        with pytest.raises(WorkloadError, match="node 3 row 1: expected"):
            self._payload([[0, True, 1, 0, "ok"], [64, False]])

    def test_non_list_row_names_node_and_index(self):
        with pytest.raises(WorkloadError, match="node 3 row 0: expected"):
            self._payload(["not-a-row"])

    def test_mistyped_field_names_node_and_index(self):
        with pytest.raises(WorkloadError, match="node 3 row 2: malformed field"):
            self._payload(
                [[0, True, 1, 0, "a"], [64, False, 0, 0, "b"],
                 [None, False, 0, 0, "c"]]
            )

    def test_negative_address_rejected(self):
        with pytest.raises(WorkloadError, match="node 3 row 0"):
            self._payload([[-64, True, 1, 0, "neg"]])

    def test_non_integer_node_key_rejected(self):
        from repro.workloads.trace import operations_from_jsonable

        with pytest.raises(WorkloadError, match="node key 'xyz'"):
            operations_from_jsonable({"xyz": []})


class TestTraceRebindEquivalence:
    """bind() must rewind replay state: reused workloads replay from op 0."""

    def _drain_node(self, workload, node):
        ops = []
        while True:
            op = workload.next_operation(node, 0)
            if op is None:
                break
            workload.on_complete(node, op, 10, True, 0)
            ops.append(op)
        return ops

    def test_rebind_rewinds_positions_and_completions(self):
        trace = {
            node: [MemoryOperation(address=(node * 8 + i) * 64,
                                   is_write=i % 2 == 0)
                   for i in range(6)]
            for node in range(2)
        }
        workload = bind(TraceWorkload(trace), processors=2)
        first = {node: self._drain_node(workload, node) for node in range(2)}
        assert workload.all_finished()
        bind(workload, processors=2)  # a sweep point reusing the machine
        assert not workload.all_finished()
        second = {node: self._drain_node(workload, node) for node in range(2)}
        assert second == first
        assert workload.all_finished()

    def test_partial_replay_then_rebind_starts_over(self):
        trace = {
            0: [MemoryOperation(address=i * 64, is_write=False)
                for i in range(5)]
        }
        workload = bind(TraceWorkload(trace), processors=1)
        head = workload.next_operation(0, 0)
        workload.on_complete(0, head, 10, True, 0)
        bind(workload, processors=1)
        assert workload.next_operation(0, 0) == head


class TestUnboundWorkloadContract:
    """Unbound workloads: introspection works, queries fail clearly."""

    def test_all_finished_before_bind_raises_workload_error(self):
        workload = TraceWorkload({0: []})
        with pytest.raises(WorkloadError, match="not bound to a system yet"):
            workload.all_finished()

    def test_describe_works_before_bind(self):
        # class-level defaults keep unbound introspection AttributeError-free
        workload = SyntheticCommercialWorkload(
            WORKLOAD_ORDER[0], operations_per_processor=10
        )
        assert isinstance(workload.describe(), str)
        assert workload.num_processors is None
        assert not workload.is_bound

    def test_bind_makes_the_same_queries_succeed(self):
        workload = TraceWorkload({0: []})
        bind(workload, processors=1)
        assert workload.is_bound
        assert workload.all_finished()

    def test_require_bound_reports_the_workload_class(self):
        workload = LockingMicrobenchmark(num_locks=4, acquires_per_processor=1)
        with pytest.raises(WorkloadError, match="LockingMicrobenchmark"):
            workload.require_bound()
