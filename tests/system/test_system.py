"""Sequencer, node dispatch, and the multiprocessor facade."""

import pytest

from repro.common.config import ProtocolName
from repro.coherence.state import MOSIState
from repro.system.multiprocessor import MultiprocessorSystem, simulate
from repro.workloads.base import MemoryOperation
from repro.workloads.microbenchmark import LockingMicrobenchmark
from repro.workloads.trace import TraceWorkload

from ..conftest import ALL_PROTOCOLS, run_microbenchmark, small_config


class TestSequencer:
    def test_hits_do_not_generate_traffic(self, protocol):
        ops = {
            0: [
                MemoryOperation(address=0, is_write=True),
                MemoryOperation(address=0, is_write=True, think_cycles=50),
                MemoryOperation(address=0, is_write=False, think_cycles=50),
            ],
            1: [],
            2: [],
            3: [],
        }
        config = small_config(protocol)
        system = MultiprocessorSystem(config, TraceWorkload(ops))
        system.run()
        sequencer = system.nodes[0].sequencer
        assert sequencer.misses == 1
        assert sequencer.hits == 2
        assert sequencer.operations_completed == 3

    def test_read_after_remote_write_is_a_miss(self, protocol):
        ops = {
            0: [MemoryOperation(address=0, is_write=True)],
            1: [MemoryOperation(address=0, is_write=False, think_cycles=2000)],
            2: [],
            3: [],
        }
        config = small_config(protocol)
        system = MultiprocessorSystem(config, TraceWorkload(ops))
        system.run()
        assert system.nodes[1].sequencer.misses == 1

    def test_eviction_writeback_when_cache_is_full(self, protocol):
        # A two-block cache forced to hold three modified blocks must evict
        # (and write back) the least recently used one.
        ops = {
            0: [
                MemoryOperation(address=0, is_write=True),
                MemoryOperation(address=64, is_write=True, think_cycles=50),
                MemoryOperation(address=128, is_write=True, think_cycles=50),
            ],
            1: [],
            2: [],
            3: [],
        }
        config = small_config(protocol, cache_capacity_blocks=2)
        system = MultiprocessorSystem(config, TraceWorkload(ops))
        system.run()
        cache = system.nodes[0].cache_controller
        assert cache.blocks.occupancy() <= 2
        counters = system.stats.counters()
        assert counters.get("sequencer0.evictions.writeback", 0) >= 1

    def test_instruction_accounting(self, protocol):
        ops = {
            0: [MemoryOperation(address=0, is_write=True, instructions=400)],
            1: [],
            2: [],
            3: [],
        }
        config = small_config(protocol)
        system = MultiprocessorSystem(config, TraceWorkload(ops))
        result = system.run()
        assert result.instructions == 400


class TestRunResult:
    def test_microbenchmark_run_produces_sane_metrics(self, protocol):
        result = run_microbenchmark(protocol, acquires=20, num_locks=64)
        assert result.operations == 4 * 20
        assert result.cycles > 0
        assert result.operations_per_cycle > 0
        assert result.performance == pytest.approx(result.operations_per_cycle)
        assert 0.0 <= result.mean_link_utilization <= 1.0
        assert result.mean_miss_latency > 100

    def test_performance_per_processor(self, protocol):
        result = run_microbenchmark(protocol, acquires=10)
        assert result.performance_per_processor == pytest.approx(
            result.performance / 4
        )

    def test_broadcast_fraction_by_protocol(self):
        snooping = run_microbenchmark(ProtocolName.SNOOPING, acquires=15)
        directory = run_microbenchmark(ProtocolName.DIRECTORY, acquires=15)
        assert snooping.broadcast_fraction == pytest.approx(1.0)
        assert directory.broadcast_fraction == pytest.approx(0.0)

    def test_simulate_helper(self):
        config = small_config(ProtocolName.BASH)
        result = simulate(config, LockingMicrobenchmark(num_locks=32, acquires_per_processor=5))
        assert result.protocol is ProtocolName.BASH
        assert result.operations == 20


class TestCrossProtocolAgreement:
    def test_all_protocols_reach_the_same_final_ownership(self):
        ops = {
            0: [MemoryOperation(address=0, is_write=True)],
            1: [MemoryOperation(address=0, is_write=True, think_cycles=1200)],
            2: [MemoryOperation(address=0, is_write=False, think_cycles=2400)],
            3: [],
        }
        finals = {}
        for protocol in ALL_PROTOCOLS:
            config = small_config(protocol)
            system = MultiprocessorSystem(config, TraceWorkload(
                {k: list(v) for k, v in ops.items()}
            ))
            system.run()
            finals[protocol] = (
                system.nodes[0].cache_controller.state_of(0),
                system.nodes[1].cache_controller.state_of(0),
                system.nodes[2].cache_controller.state_of(0),
            )
        assert finals[ProtocolName.SNOOPING] == finals[ProtocolName.DIRECTORY]
        assert finals[ProtocolName.SNOOPING] == finals[ProtocolName.BASH]
        assert finals[ProtocolName.SNOOPING][1] is MOSIState.OWNED
        assert finals[ProtocolName.SNOOPING][2] is MOSIState.SHARED
