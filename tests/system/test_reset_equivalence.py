"""Reset-equivalence contract of the zero-rebuild sweep engine.

A :class:`MultiprocessorSystem` re-armed with :meth:`reset` must be
*indistinguishable* from a freshly constructed one: field-for-field identical
:class:`RunResult`\\ s (including the full stats snapshot) and bit-identical
golden event traces.  The batched sweep executor and the arena's pooled
allocation both rely on this contract, so it is pinned here for every
protocol, across seeds, bandwidths, thresholds and cache capacities.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.common.config import AdaptiveConfig, ProtocolName, SystemConfig
from repro.experiments.batch import BatchRunner, spec_batch_key
from repro.experiments.parallel import PointSpec, run_sweep
from repro.experiments.runner import QUICK, microbenchmark_factory, run_point
from repro.sim.arena import SimulationArena
from repro.system.multiprocessor import MultiprocessorSystem, simulate
from repro.workloads.microbenchmark import LockingMicrobenchmark

from ..conftest import ALL_PROTOCOLS, FAST_ADAPTIVE

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_traces.json"

SEEDS = (1, 2)


def _config(protocol, seed, bandwidth=1600.0, threshold=0.75, capacity=None):
    extra = {} if capacity is None else {"cache_capacity_blocks": capacity}
    return SystemConfig(
        num_processors=8,
        protocol=protocol,
        bandwidth_mb_per_second=bandwidth,
        adaptive=dataclasses.replace(
            FAST_ADAPTIVE, utilization_threshold=threshold
        ),
        random_seed=seed,
        **extra,
    )


def _workload():
    return LockingMicrobenchmark(
        num_locks=64, acquires_per_processor=30, think_jitter=16
    )


class TestResetEquivalence:
    def test_reset_reused_system_matches_fresh_for_every_protocol_and_seed(
        self, protocol, backend
    ):
        """The headline contract: reset + run == build + run, field for field."""
        fresh = {
            seed: simulate(_config(protocol, seed), _workload()) for seed in SEEDS
        }
        arena = SimulationArena()
        system = MultiprocessorSystem(
            _config(protocol, SEEDS[0]), _workload(), arena=arena
        )
        assert system.run() == fresh[SEEDS[0]]
        for seed in SEEDS:
            # Deliberately out of construction order and repeated: the reset
            # must not depend on what ran before.
            result = system.reset(_workload(), _config(protocol, seed)).run()
            assert result == fresh[seed], f"reset run diverged for seed {seed}"

    def test_reset_across_bandwidth_and_threshold_changes(self, protocol):
        points = [(400.0, 0.75), (6400.0, 0.75), (1600.0, 0.55), (1600.0, 0.95)]
        arena = SimulationArena()
        system = MultiprocessorSystem(
            _config(protocol, 1), _workload(), arena=arena
        )
        system.run()
        for bandwidth, threshold in points:
            config = _config(protocol, 2, bandwidth=bandwidth, threshold=threshold)
            assert system.reset(_workload(), config).run() == simulate(
                config, _workload()
            )

    def test_reset_across_cache_capacity_change(self, protocol):
        small = _config(protocol, 1, capacity=2)
        large = _config(protocol, 1)
        system = MultiprocessorSystem(large, _workload())
        system.run()
        assert system.reset(_workload(), small).run() == simulate(small, _workload())
        assert system.reset(_workload(), large).run() == simulate(large, _workload())

    def test_structural_config_change_is_rejected(self):
        from repro.errors import SimulationError

        system = MultiprocessorSystem(
            _config(ProtocolName.SNOOPING, 1), _workload()
        )
        wrong_protocol = _config(ProtocolName.DIRECTORY, 1)
        with pytest.raises(SimulationError, match="structural"):
            system.reset(_workload(), wrong_protocol)
        wrong_size = dataclasses.replace(
            _config(ProtocolName.SNOOPING, 1), num_processors=4
        )
        with pytest.raises(SimulationError, match="structural"):
            system.reset(_workload(), wrong_size)

    def test_stats_snapshot_carries_no_ghost_names(self, protocol):
        """Statistics created lazily by run N must not appear after reset N+1.

        Seed variation alone rarely changes the lazily created stat set, so
        this drives one run at a *different bandwidth* first and then checks
        the reset run's snapshot against a fresh system's, key set included
        (RunResult equality already covers it; this pins the mechanism).
        """
        config = _config(protocol, 2)
        fresh = simulate(config, _workload())
        system = MultiprocessorSystem(
            _config(protocol, 1, bandwidth=200.0), _workload()
        )
        system.run()
        reset_result = system.reset(_workload(), config).run()
        assert set(reset_result.stats) == set(fresh.stats)
        assert reset_result.stats == fresh.stats


class TestGoldenTraceAfterReset:
    @pytest.mark.parametrize(
        "name", ["snooping", "directory", "bash", "directory_fastpath"]
    )
    def test_golden_trace_is_bit_identical_on_a_reused_system(self, name):
        golden = json.loads(GOLDEN_PATH.read_text())[name]
        cfg = golden["config"]
        extra = {}
        if "cache_capacity_blocks" in cfg:
            extra["cache_capacity_blocks"] = cfg["cache_capacity_blocks"]
        config = SystemConfig(
            num_processors=cfg["num_processors"],
            protocol=ProtocolName(cfg.get("protocol", name)),
            bandwidth_mb_per_second=cfg["bandwidth_mb_per_second"],
            adaptive=AdaptiveConfig(
                sampling_interval=cfg["sampling_interval"],
                policy_counter_bits=cfg["policy_counter_bits"],
            ),
            random_seed=cfg["random_seed"],
            **extra,
        )

        def workload():
            return LockingMicrobenchmark(
                num_locks=cfg["num_locks"],
                acquires_per_processor=cfg["acquires_per_processor"],
                think_cycles=0,
            )

        warm = dataclasses.replace(config, random_seed=cfg["random_seed"] + 7)
        system = MultiprocessorSystem(warm, workload(), arena=SimulationArena())
        system.run()  # warm run with a different seed dirties every component
        system.reset(workload(), config)
        trace = []
        system.simulator.scheduler.on_fire = lambda time, label: trace.append(
            [time, label]
        )
        system.run()
        assert len(trace) == golden["fired"]
        assert system.simulator.now == golden["final_time"]
        assert trace == golden["events"]


class TestArenaPooling:
    def test_pooled_run_matches_unpooled_run(self, protocol):
        config = _config(protocol, 1)
        plain = simulate(config, _workload())
        pooled = simulate(config, _workload(), arena=SimulationArena())
        assert plain == pooled

    def test_pools_recycle_across_resets(self):
        arena = SimulationArena()
        config = _config(ProtocolName.DIRECTORY, 1)
        system = MultiprocessorSystem(config, _workload(), arena=arena)
        system.run()
        assert arena.pooled_messages > 0
        assert arena.pooled_transactions > 0
        level = arena.pooled_messages
        system.reset(_workload(), config).run()
        # The second run drew from (and refilled) the free lists rather than
        # growing them without bound.
        assert arena.pooled_messages <= max(level * 2, 4096)

    def test_runtime_guard_restores_gc_state(self):
        import gc

        arena = SimulationArena()
        assert gc.isenabled()
        with arena.runtime():
            assert not gc.isenabled()
            with arena.runtime():  # reentrant: inner guard is a no-op
                assert not gc.isenabled()
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_runtime_guard_restores_gc_state_on_error(self):
        import gc

        arena = SimulationArena()
        with pytest.raises(RuntimeError):
            with arena.runtime():
                raise RuntimeError("boom")
        assert gc.isenabled()


class TestBatchRunner:
    def _specs(self):
        scale = dataclasses.replace(
            QUICK,
            name="tiny-batch",
            microbenchmark_processors=4,
            acquires_per_processor=8,
            num_locks=16,
            seeds=(1, 2),
        )
        workload = microbenchmark_factory(scale)
        return [
            PointSpec(scale=scale, protocol=protocol, bandwidth=bandwidth, workload=workload)
            for protocol in ALL_PROTOCOLS
            for bandwidth in (800.0, 3200.0)
        ]

    def test_batched_points_equal_rebuilt_points(self):
        specs = self._specs()
        runner = BatchRunner()
        for spec in specs:
            batched = runner.run_spec(spec)
            rebuilt = run_point(
                spec.scale, spec.protocol, spec.bandwidth, spec.workload
            )
            assert batched.results == rebuilt.results
        # One system per (protocol, processor count), not one per point.
        assert runner.systems_built == len({spec_batch_key(s) for s in specs})
        assert runner.runs_completed == len(specs) * len(specs[0].scale.seeds)

    def test_run_sweep_batched_equals_unbatched(self):
        specs = self._specs()
        batched = run_sweep(specs, workers=1)
        unbatched = run_sweep(specs, workers=1, batch=False)
        for a, b in zip(batched, unbatched):
            assert a.results == b.results

    def test_batch_key_uses_explicit_processor_count(self):
        specs = self._specs()
        spec = dataclasses.replace(specs[0], num_processors=8)
        assert spec_batch_key(spec) == (specs[0].protocol, 8)
        assert spec_batch_key(specs[0]) == (
            specs[0].protocol,
            specs[0].scale.microbenchmark_processors,
        )
