"""Node message dispatch and the simulation Component base class."""

import pytest

from repro.common.config import ProtocolName
from repro.common.stats import StatsRegistry
from repro.errors import ProtocolError, ReproError, SimulationError
from repro.interconnect.message import DestinationUnit, Message, MessageType
from repro.sim.component import Component
from repro.sim.scheduler import Scheduler

from ..conftest import build_trace_system


class TestComponent:
    def test_schedule_and_stats_helpers(self):
        scheduler = Scheduler()
        stats = StatsRegistry()
        component = Component("widget", scheduler, stats)
        fired = []
        component.schedule(10, lambda: fired.append(component.now), "tick")
        scheduler.run()
        assert fired == [10]
        component.count("things", 3)
        component.record("value", 2.5)
        assert stats.counters()["widget.things"] == 3
        assert stats.means()["widget.value"] == 2.5

    def test_stat_name_prefixes_component(self):
        component = Component("cache7", Scheduler(), StatsRegistry())
        assert component.stat_name("misses") == "cache7.misses"


class TestNodeDispatch:
    def _system(self, protocol=ProtocolName.SNOOPING):
        return build_trace_system(protocol, {n: [] for n in range(4)})

    def test_unordered_messages_route_by_destination_unit(self):
        system = self._system()
        node = system.nodes[1]
        seen = {"cache": 0, "memory": 0}
        node.cache_controller.unordered_handlers[MessageType.DATA] = (
            lambda msg: seen.__setitem__("cache", seen["cache"] + 1)
        )
        node.memory_controller.unordered_handlers[MessageType.WB_DATA] = (
            lambda msg: seen.__setitem__("memory", seen["memory"] + 1)
        )
        node.invalidate_dispatch_cache()
        cache_msg = Message(
            msg_type=MessageType.DATA, src=0, dest=1, address=0, size_bytes=72,
            requester=1, dest_unit=DestinationUnit.CACHE,
        )
        memory_msg = Message(
            msg_type=MessageType.WB_DATA, src=0, dest=1, address=64, size_bytes=72,
            requester=0, dest_unit=DestinationUnit.MEMORY,
        )
        node.deliver_unordered(cache_msg)
        node.deliver_unordered(memory_msg)
        assert seen == {"cache": 1, "memory": 1}

    def test_ordered_messages_reach_both_controllers(self):
        system = self._system()
        node = system.nodes[2]
        calls = []
        node.cache_controller.ordered_handlers[MessageType.GETS] = (
            lambda msg: calls.append("cache")
        )
        node.memory_controller.ordered_handlers[MessageType.GETS] = (
            lambda msg: calls.append("memory")
        )
        node.invalidate_dispatch_cache()
        # Address 128 is homed at node 2, so the home filter admits the
        # memory-side handler after the cache snoop.
        request = Message(
            msg_type=MessageType.GETS, src=0, address=128, size_bytes=8, requester=0
        )
        node.deliver_ordered(request)
        assert calls == ["cache", "memory"]

    def test_ordered_home_filter_skips_foreign_memory(self):
        system = self._system()
        node = system.nodes[2]
        calls = []
        node.cache_controller.ordered_handlers[MessageType.GETS] = (
            lambda msg: calls.append("cache")
        )
        node.memory_controller.ordered_handlers[MessageType.GETS] = (
            lambda msg: calls.append("memory")
        )
        node.invalidate_dispatch_cache()
        # Address 0 is homed at node 0: only the cache controller snoops it.
        request = Message(
            msg_type=MessageType.GETS, src=0, address=0, size_bytes=8, requester=0
        )
        node.deliver_ordered(request)
        assert calls == ["cache"]

    def test_invalidate_dispatch_cache_reaches_network_caches(self):
        system = self._system()
        scheduler = system.simulator.scheduler
        node = system.nodes[1]

        def send_data():
            message = Message(
                msg_type=MessageType.DATA, src=0, dest=1, address=0, size_bytes=72,
                requester=1, dest_unit=DestinationUnit.CACHE,
            )
            system.interconnect.send_unordered(message)
            scheduler.run()

        # Prime the network's compiled delivery cache with the real handler.
        send_data()
        seen = []
        node.cache_controller.unordered_handlers[MessageType.DATA] = seen.append
        node.invalidate_dispatch_cache()
        send_data()
        assert len(seen) == 1, "network delivered through a stale compiled entry"

    def test_unregistered_unordered_type_fails_loudly(self):
        system = self._system()
        node = system.nodes[1]
        # A marker is an ordered-network message; arriving point-to-point at
        # the cache controller must hit the shared rejection path.
        stray = Message(
            msg_type=MessageType.MARKER, src=0, dest=1, address=0, size_bytes=8,
            requester=1, dest_unit=DestinationUnit.CACHE,
        )
        with pytest.raises(ProtocolError):
            node.deliver_unordered(stray)

    def test_memory_controller_ignores_foreign_addresses(self):
        system = self._system()
        # Address 0 is homed at node 0; node 1's memory controller must not
        # create directory state for it when it snoops the request.
        request = Message(
            msg_type=MessageType.GETS, src=2, address=0, size_bytes=8, requester=2,
            recipients=frozenset(range(4)),
        )
        system.nodes[1].memory_controller.dispatch_ordered(request)
        assert 0 not in system.nodes[1].memory_controller.directory


class TestErrorHierarchy:
    def test_all_library_errors_share_a_base(self):
        from repro import errors

        for name in (
            "ConfigurationError",
            "SimulationError",
            "ProtocolError",
            "NetworkError",
            "WorkloadError",
            "VerificationError",
        ):
            assert issubclass(getattr(errors, name), ReproError)

    def test_simulation_error_is_catchable_as_repro_error(self):
        scheduler = Scheduler()
        scheduler.schedule_at(5, lambda: None)
        scheduler.run()
        with pytest.raises(ReproError):
            scheduler.schedule_at(1, lambda: None)
        with pytest.raises(SimulationError):
            scheduler.schedule_at(1, lambda: None)
