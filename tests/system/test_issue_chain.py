"""Selection and decline discipline of the compiled request-issue chain.

The compiled ``SequencerStep`` (``repro._core``) fuses the sequencer's
per-reference path — block probe, hit test, eviction, miss bookkeeping,
request issue and think-time rescheduling — into one C delivery object.  The
offer follows the same contract as the compiled protocol handlers: stock
classes with pristine methods get the C step, *any* unusual shape (a
subclassed sequencer, a monkeypatched send hook, a swapped workload entry
point) keeps the pure path for that node, and both paths are bit-identical
by construction (pinned by the backend-parametrized golden traces and the
full-stats equivalence here).
"""

from __future__ import annotations

import pytest

from repro import _core
from repro.coherence.block import CacheBlock
from repro.coherence.state import MOSIState
from repro.protocols.dispatch import compile_sequencer_step
from repro.system.multiprocessor import MultiprocessorSystem, simulate
from repro.system.sequencer import Sequencer
from repro.workloads.microbenchmark import LockingMicrobenchmark

from ..conftest import ALL_PROTOCOLS, run_microbenchmark, small_config

needs_compiled = pytest.mark.skipif(
    not _core.compiled_available(),
    reason="compiled extension not built (python -m repro._core.build)",
)


def _build_system(protocol, **overrides):
    config = small_config(protocol, **overrides)
    workload = LockingMicrobenchmark(
        num_locks=8, acquires_per_processor=10, think_cycles=0
    )
    return MultiprocessorSystem(config, workload)


def _selection(sequencer):
    return _core.handler_selections().get(f"Sequencer{sequencer.node_id}.step")


@needs_compiled
class TestIssueChainSelection:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=str)
    def test_stock_system_compiles_the_step(self, protocol):
        ext = _core.load_extension()
        with _core.use_backend("compiled"):
            system = _build_system(protocol)
            sequencer = system.nodes[0].sequencer
            step = compile_sequencer_step(sequencer)
            assert isinstance(step, ext.SequencerStep)
            assert _selection(sequencer) == "compiled"

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=str)
    def test_pure_backend_keeps_the_bound_method(self, protocol):
        with _core.use_backend("pure"):
            system = _build_system(protocol)
            sequencer = system.nodes[0].sequencer
            assert compile_sequencer_step(sequencer) is None
            sequencer.start()
            assert sequencer._perform_entry == sequencer._perform

    def test_backend_reports_issue_chain_component(self):
        with _core.use_backend("compiled"):
            info = _core.backend_info()
        assert info["components"]["issue_chain"] == "compiled"
        with _core.use_backend("pure"):
            info = _core.backend_info()
        assert info["components"]["issue_chain"] == "pure"


@needs_compiled
class TestDeclineDiscipline:
    """Any unusual node shape keeps the pure path — for that node only."""

    def test_subclassed_sequencer_declines(self):
        class TracingSequencer(Sequencer):
            def _perform(self, operation):
                super()._perform(operation)

        with _core.use_backend("compiled"):
            system = _build_system(ALL_PROTOCOLS[0])
            sequencer = system.nodes[0].sequencer
            sequencer.__class__ = TracingSequencer
            assert compile_sequencer_step(sequencer) is None
            assert _selection(sequencer) == "declined"
            sequencer.start()
            assert sequencer._perform_entry == sequencer._perform

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=str)
    def test_monkeypatched_send_request_declines(self, protocol):
        with _core.use_backend("compiled"):
            system = _build_system(protocol)
            cache = system.nodes[0].cache_controller
            original = cache._send_request
            cache._send_request = lambda txn: original(txn)
            sequencer = system.nodes[0].sequencer
            assert compile_sequencer_step(sequencer) is None
            assert _selection(sequencer) == "declined"

    def test_swapped_workload_next_operation_declines(self):
        with _core.use_backend("compiled"):
            system = _build_system(ALL_PROTOCOLS[0])
            sequencer = system.nodes[0].sequencer
            workload = sequencer.workload
            original = workload.next_operation
            workload.next_operation = lambda node, now: original(node, now)
            assert compile_sequencer_step(sequencer) is None
            assert _selection(sequencer) == "declined"

    def test_decline_is_per_node(self):
        """Patching node 0 must not cost the other nodes their C step."""
        ext = _core.load_extension()
        with _core.use_backend("compiled"):
            system = _build_system(ALL_PROTOCOLS[0])
            system.nodes[0].cache_controller._send_request = lambda txn: None
            assert compile_sequencer_step(system.nodes[0].sequencer) is None
            step = compile_sequencer_step(system.nodes[1].sequencer)
            assert isinstance(step, ext.SequencerStep)

    def test_patched_node_still_runs_correctly(self):
        """A declined node's run is the stock pure run, bit for bit."""
        with _core.use_backend("compiled"):
            stock = _build_system(ALL_PROTOCOLS[0])
            result = stock.run()
            patched = _build_system(ALL_PROTOCOLS[0])
            sequencer = patched.nodes[0].sequencer
            # An identity-preserving patch: same behaviour, unusual shape.
            original = patched.nodes[0].cache_controller._send_request
            patched.nodes[0].cache_controller._send_request = (
                lambda txn: original(txn)
            )
            patched_result = patched.run()
            assert _selection(sequencer) == "declined"
            assert patched_result.stats == result.stats


class TestEvictionDecisions:
    """Regression pin for the prebound ``_maybe_evict`` rewrite."""

    def _sequencer(self, capacity=4):
        system = _build_system(
            ALL_PROTOCOLS[0], cache_capacity_blocks=capacity
        )
        return system.nodes[0].sequencer

    def _install(self, sequencer, address, state, last_access_time):
        block = CacheBlock(address, state=state, last_access_time=last_access_time)
        sequencer.cache.blocks._blocks[address] = block
        return block

    def test_victim_is_lru_by_time_then_address(self):
        sequencer = self._sequencer(capacity=3)
        self._install(sequencer, 0x100, MOSIState.SHARED, 30)
        self._install(sequencer, 0x200, MOSIState.SHARED, 10)
        self._install(sequencer, 0x300, MOSIState.SHARED, 10)
        sequencer._maybe_evict()
        # Ties on last_access_time break toward the lower address.
        assert 0x200 not in sequencer.cache.blocks
        assert 0x100 in sequencer.cache.blocks
        assert 0x300 in sequencer.cache.blocks
        name = sequencer.stat_name("evictions.silent")
        assert sequencer.stats.counter(name).count == 1

    def test_owned_victim_issues_a_writeback(self):
        sequencer = self._sequencer(capacity=2)
        victim = self._install(sequencer, 0x100, MOSIState.MODIFIED, 5)
        self._install(sequencer, 0x200, MOSIState.SHARED, 50)
        sequencer._maybe_evict()
        # The owned block is written back, not silently dropped: it stays in
        # the store (in O->writeback flight) and the writeback MSHR is live.
        assert victim.address in sequencer.cache.writebacks
        name = sequencer.stat_name("evictions.writeback")
        assert sequencer.stats.counter(name).count == 1

    def test_victim_with_outstanding_transaction_is_skipped(self):
        sequencer = self._sequencer(capacity=2)
        self._install(sequencer, 0x100, MOSIState.SHARED, 5)
        self._install(sequencer, 0x200, MOSIState.SHARED, 50)
        sequencer.cache.transactions[0x100] = object()
        before = dict(sequencer.cache.blocks._blocks)
        sequencer._maybe_evict()
        assert dict(sequencer.cache.blocks._blocks) == before

    def test_eviction_decisions_identical_across_backends(self):
        """Counter-level pin: both backends evict the same blocks."""
        if not _core.compiled_available():
            pytest.skip("compiled extension not built")
        per_backend = {}
        for name in ("pure", "compiled"):
            with _core.use_backend(name):
                config = small_config(
                    ALL_PROTOCOLS[0], cache_capacity_blocks=4
                )
                workload = LockingMicrobenchmark(
                    num_locks=64, acquires_per_processor=40, think_cycles=0
                )
                result = simulate(config, workload)
                per_backend[name] = {
                    key: value
                    for key, value in result.stats.items()
                    if "evictions" in key
                }
        assert per_backend["pure"] == per_backend["compiled"]
        assert any(per_backend["pure"].values())


@needs_compiled
class TestIssueChainEquivalence:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=str)
    def test_full_stats_identical_across_backends(self, protocol):
        """The whole observable run — every counter — matches bit for bit."""
        results = {}
        for name in ("pure", "compiled"):
            with _core.use_backend(name):
                results[name] = run_microbenchmark(protocol, acquires=25)
        assert results["pure"].stats == results["compiled"].stats
        assert results["pure"].cycles == results["compiled"].cycles
