"""Uncontended protocol latencies against the numbers of Section 4.2.

The paper's timing model gives 180 ns for a fetch from memory, 125 ns for a
cache-to-cache transfer under Snooping (or a broadcast BASH request), and
255 ns for a cache-to-cache transfer under Directory (or a unicast BASH
request that is retried once).  Our interconnect adds the (small, at very high
bandwidth) serialisation time of each message onto each link, so the measured
latencies sit a few cycles above the closed-form numbers; the tests allow that
slack and check the ratios the paper emphasises.
"""

import pytest

from repro.common.config import ProtocolName
from repro.workloads.base import MemoryOperation

from ..conftest import build_trace_system

VERY_HIGH_BANDWIDTH = 100_000.0


def requester_latency(system):
    return system.stats.means().get("cache0.miss_latency", 0.0)


def memory_to_cache(protocol):
    ops = {0: [MemoryOperation(address=256, is_write=True)], 1: [], 2: [], 3: []}
    system = build_trace_system(protocol, ops, bandwidth=VERY_HIGH_BANDWIDTH)
    system.run()
    return requester_latency(system)


def cache_to_cache(protocol, force_unicast=False):
    ops = {
        1: [MemoryOperation(address=256, is_write=True)],
        0: [MemoryOperation(address=256, is_write=True, think_cycles=1500)],
        2: [],
        3: [],
    }
    system = build_trace_system(protocol, ops, bandwidth=VERY_HIGH_BANDWIDTH)
    if force_unicast:
        for node in system.nodes:
            node.cache_controller.adaptive.should_broadcast = lambda: False
    system.run()
    return requester_latency(system)


class TestMemoryFetchLatency:
    @pytest.mark.parametrize("protocol", [ProtocolName.SNOOPING, ProtocolName.BASH])
    def test_ordered_protocols_fetch_from_memory_in_about_180ns(self, protocol):
        assert memory_to_cache(protocol) == pytest.approx(180, abs=10)

    def test_directory_fetch_from_memory_in_about_180ns(self):
        assert memory_to_cache(ProtocolName.DIRECTORY) == pytest.approx(180, abs=10)


class TestCacheToCacheLatency:
    def test_snooping_cache_to_cache_is_about_125ns(self):
        assert cache_to_cache(ProtocolName.SNOOPING) == pytest.approx(125, abs=10)

    def test_bash_broadcast_matches_snooping(self):
        assert cache_to_cache(ProtocolName.BASH) == pytest.approx(
            cache_to_cache(ProtocolName.SNOOPING), abs=5
        )

    def test_directory_cache_to_cache_is_about_255ns(self):
        assert cache_to_cache(ProtocolName.DIRECTORY) == pytest.approx(255, abs=12)

    def test_bash_unicast_matches_directory_indirection(self):
        # An insufficient BASH unicast is retried by the memory controller and
        # should cost about what a Directory indirection costs.
        bash_unicast = cache_to_cache(ProtocolName.BASH, force_unicast=True)
        assert bash_unicast == pytest.approx(255, abs=15)

    def test_sharing_transfer_is_cheaper_than_memory_under_snooping(self):
        # The paper: cache-to-cache ~70% of memory latency for Snooping.
        ratio = cache_to_cache(ProtocolName.SNOOPING) / memory_to_cache(
            ProtocolName.SNOOPING
        )
        assert 0.6 < ratio < 0.8

    def test_indirection_is_dearer_than_memory_under_directory(self):
        assert cache_to_cache(ProtocolName.DIRECTORY) > memory_to_cache(
            ProtocolName.DIRECTORY
        )
